//! Waveform recording and measurement — the simulator's oscilloscope.

use eh_units::Seconds;

/// Memory policy for a recorded [`Trace`].
///
/// Day- and week-scale runs at millisecond steps would otherwise grow
/// traces into the hundreds of millions of samples; the policy lets the
/// recorder thin the stream at capture time instead of post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Keep every recorded sample.
    #[default]
    Full,
    /// Keep one sample out of every `n` (values below 1 behave as 1).
    Decimate(usize),
    /// Bound the trace at roughly `capacity` stored samples: whenever the
    /// bound is reached, every second stored sample is dropped and the
    /// capture stride doubles, so the trace always spans the whole run at
    /// progressively coarser resolution (values below 2 behave as 2).
    Capacity(usize),
}

/// A recorded waveform: a named, time-ordered series of samples, with the
/// measurement helpers an engineer would use on a scope (edges, periods,
/// ripple, averages). Fig. 4 of the paper is two of these: `PULSE` and
/// `HELD_SAMPLE`.
///
/// ```
/// use eh_analog::Trace;
/// use eh_units::Seconds;
///
/// let mut t = Trace::new("PULSE");
/// for n in 0..100 {
///     let time = n as f64 * 0.01;
///     let v = if (0.2..0.3).contains(&time) { 3.3 } else { 0.0 };
///     t.record(Seconds::new(time), v);
/// }
/// let edges = t.rising_edges(1.65);
/// assert_eq!(edges.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
    policy: TracePolicy,
    stride: usize,
    skip: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new("")
    }
}

impl Trace {
    /// Creates an empty trace with a signal name, keeping every sample.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_policy(name, TracePolicy::Full)
    }

    /// Creates an empty trace with a signal name and a memory policy.
    pub fn with_policy(name: impl Into<String>, policy: TracePolicy) -> Self {
        let stride = match policy {
            TracePolicy::Full | TracePolicy::Capacity(_) => 1,
            TracePolicy::Decimate(n) => n.max(1),
        };
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
            policy,
            stride,
            skip: 0,
        }
    }

    /// The signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The memory policy this trace records under.
    pub fn policy(&self) -> TracePolicy {
        self.policy
    }

    /// Appends a sample, subject to the trace's [`TracePolicy`]. Samples
    /// must be recorded in non-decreasing time order; out-of-order
    /// samples are ignored (with debug assertion).
    pub fn record(&mut self, t: Seconds, value: f64) {
        if let Some(&last) = self.times.last() {
            debug_assert!(t.value() >= last, "trace samples must be time-ordered");
            if t.value() < last {
                return;
            }
        }
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        self.skip = self.stride - 1;
        self.times.push(t.value());
        self.values.push(value);
        if let TracePolicy::Capacity(cap) = self.policy {
            let cap = cap.max(2);
            if self.times.len() >= cap {
                self.thin();
            }
        }
    }

    /// Drops every second stored sample and doubles the capture stride —
    /// the [`TracePolicy::Capacity`] overflow response.
    fn thin(&mut self) {
        let mut keep = 0;
        for i in (0..self.times.len()).step_by(2) {
            self.times[keep] = self.times[i];
            self.values[keep] = self.values[i];
            keep += 1;
        }
        self.times.truncate(keep);
        self.values.truncate(keep);
        self.stride *= 2;
        self.skip = self.stride - 1;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded samples as `(time_s, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (Seconds::new(t), v))
    }

    /// Time of the first sample, if any.
    pub fn start_time(&self) -> Option<Seconds> {
        self.times.first().map(|&t| Seconds::new(t))
    }

    /// Time of the last sample, if any.
    pub fn end_time(&self) -> Option<Seconds> {
        self.times.last().map(|&t| Seconds::new(t))
    }

    /// Zero-order-hold interpolation: the value of the most recent sample
    /// at or before `t`. Returns `None` before the first sample.
    pub fn value_at(&self, t: Seconds) -> Option<f64> {
        let idx = self.times.partition_point(|&x| x <= t.value());
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// Minimum value in the closed time window `[from, to]`.
    pub fn min_in(&self, from: Seconds, to: Seconds) -> Option<f64> {
        self.window(from, to)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum value in the closed time window `[from, to]`.
    pub fn max_in(&self, from: Seconds, to: Seconds) -> Option<f64> {
        self.window(from, to)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Peak-to-peak ripple in the window `[from, to]`.
    pub fn ripple_in(&self, from: Seconds, to: Seconds) -> Option<f64> {
        Some(self.max_in(from, to)? - self.min_in(from, to)?)
    }

    /// Time-weighted mean over the full trace (trapezoidal).
    pub fn mean(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return self.values.first().copied();
        }
        let mut area = 0.0;
        for i in 1..self.times.len() {
            let dt = self.times[i] - self.times[i - 1];
            area += 0.5 * (self.values[i] + self.values[i - 1]) * dt;
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        if span <= 0.0 {
            return self.values.first().copied();
        }
        Some(area / span)
    }

    /// Times where the signal crosses `threshold` upward.
    pub fn rising_edges(&self, threshold: f64) -> Vec<Seconds> {
        self.edges(threshold, true)
    }

    /// Times where the signal crosses `threshold` downward.
    pub fn falling_edges(&self, threshold: f64) -> Vec<Seconds> {
        self.edges(threshold, false)
    }

    /// Durations for which the signal stayed above `threshold`
    /// (complete high phases only: a rising edge followed by a falling
    /// edge).
    pub fn high_durations(&self, threshold: f64) -> Vec<Seconds> {
        let rises = self.rising_edges(threshold);
        let falls = self.falling_edges(threshold);
        let mut out = Vec::new();
        let mut fi = 0;
        for r in rises {
            while fi < falls.len() && falls[fi] <= r {
                fi += 1;
            }
            if fi < falls.len() {
                out.push(falls[fi] - r);
                fi += 1;
            }
        }
        out
    }

    /// Fraction of total trace time the signal spent above `threshold`.
    pub fn duty_cycle(&self, threshold: f64) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let mut high = 0.0;
        for i in 1..self.times.len() {
            if self.values[i - 1] > threshold {
                high += self.times[i] - self.times[i - 1];
            }
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        (span > 0.0).then_some(high / span)
    }

    fn window(&self, from: Seconds, to: Seconds) -> impl Iterator<Item = f64> + '_ {
        let lo = self.times.partition_point(|&t| t < from.value());
        let hi = self.times.partition_point(|&t| t <= to.value());
        self.values[lo..hi].iter().copied()
    }

    fn edges(&self, threshold: f64, rising: bool) -> Vec<Seconds> {
        let mut out = Vec::new();
        for i in 1..self.values.len() {
            let (a, b) = (self.values[i - 1], self.values[i]);
            let crossed = if rising {
                a <= threshold && b > threshold
            } else {
                a >= threshold && b < threshold
            };
            if crossed {
                out.push(Seconds::new(self.times[i]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave() -> Trace {
        // 1 kHz-ish square wave: high 1 ms, low 3 ms, 5 periods.
        let mut t = Trace::new("sq");
        let mut time = 0.0;
        for _ in 0..5 {
            for step in 0..10 {
                t.record(Seconds::new(time + step as f64 * 1e-4), 3.3);
            }
            time += 1e-3;
            for step in 0..30 {
                t.record(Seconds::new(time + step as f64 * 1e-4), 0.0);
            }
            time += 3e-3;
        }
        t
    }

    #[test]
    fn edges_and_durations() {
        let t = square_wave();
        assert_eq!(t.rising_edges(1.65).len(), 4); // first high starts at t=0: no edge
        assert_eq!(t.falling_edges(1.65).len(), 5);
        let highs = t.high_durations(1.65);
        assert_eq!(highs.len(), 4);
        for d in highs {
            assert!((d.as_milli() - 1.0).abs() < 0.15, "duration {d}");
        }
    }

    #[test]
    fn duty_cycle_quarter() {
        let t = square_wave();
        let d = t.duty_cycle(1.65).unwrap();
        assert!((d - 0.25).abs() < 0.03, "duty = {d}");
    }

    #[test]
    fn value_at_zero_order_hold() {
        let mut t = Trace::new("s");
        t.record(Seconds::new(1.0), 10.0);
        t.record(Seconds::new(2.0), 20.0);
        assert_eq!(t.value_at(Seconds::new(0.5)), None);
        assert_eq!(t.value_at(Seconds::new(1.0)), Some(10.0));
        assert_eq!(t.value_at(Seconds::new(1.5)), Some(10.0));
        assert_eq!(t.value_at(Seconds::new(3.0)), Some(20.0));
    }

    #[test]
    fn window_statistics() {
        let mut t = Trace::new("w");
        for n in 0..10 {
            t.record(Seconds::new(n as f64), n as f64);
        }
        assert_eq!(t.min_in(Seconds::new(2.0), Seconds::new(5.0)), Some(2.0));
        assert_eq!(t.max_in(Seconds::new(2.0), Seconds::new(5.0)), Some(5.0));
        assert_eq!(t.ripple_in(Seconds::new(2.0), Seconds::new(5.0)), Some(3.0));
        assert_eq!(t.min_in(Seconds::new(20.0), Seconds::new(30.0)), None);
    }

    #[test]
    fn mean_of_ramp() {
        let mut t = Trace::new("ramp");
        for n in 0..=10 {
            t.record(Seconds::new(n as f64), n as f64);
        }
        assert!((t.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let t = Trace::new("e");
        assert!(t.is_empty());
        assert_eq!(t.mean(), None);
        assert_eq!(t.duty_cycle(0.5), None);
        let mut t2 = Trace::new("one");
        t2.record(Seconds::new(1.0), 7.0);
        assert_eq!(t2.mean(), Some(7.0));
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn start_end_times() {
        let t = square_wave();
        assert_eq!(t.start_time(), Some(Seconds::ZERO));
        assert!(t.end_time().unwrap().value() > 0.015);
    }

    #[test]
    fn decimation_keeps_one_in_n() {
        let mut t = Trace::with_policy("d", TracePolicy::Decimate(10));
        for n in 0..1000 {
            t.record(Seconds::new(n as f64), n as f64);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.value_at(Seconds::ZERO), Some(0.0));
        assert_eq!(t.value_at(Seconds::new(999.0)), Some(990.0));
    }

    #[test]
    fn degenerate_decimation_keeps_everything() {
        let mut t = Trace::with_policy("d0", TracePolicy::Decimate(0));
        for n in 0..50 {
            t.record(Seconds::new(n as f64), n as f64);
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn capacity_bounds_memory_but_spans_the_run() {
        let cap = 64;
        let mut t = Trace::with_policy("c", TracePolicy::Capacity(cap));
        for n in 0..100_000 {
            t.record(Seconds::new(n as f64), n as f64);
        }
        assert!(t.len() <= cap, "len {} exceeds capacity {cap}", t.len());
        assert!(t.len() >= cap / 4, "over-thinned to {} samples", t.len());
        assert_eq!(t.start_time(), Some(Seconds::ZERO));
        // The last kept sample is within one (doubled) stride of the end.
        assert!(t.end_time().unwrap().value() > 90_000.0);
        // Times must remain strictly ordered after in-place thinning.
        let times: Vec<f64> = t.iter().map(|(s, _)| s.value()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_policy_is_the_default() {
        assert_eq!(Trace::new("x").policy(), TracePolicy::Full);
        assert_eq!(Trace::default().policy(), TracePolicy::Full);
    }
}
