//! Error type for the analog substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by analog component constructors and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalogError {
    /// A component parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The netlist DC solve failed (singular matrix — usually a floating
    /// node or a short between two voltage sources).
    SingularNetwork,
    /// A netlist element referenced a node that does not exist.
    UnknownNode {
        /// The out-of-range node index.
        index: usize,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::InvalidParameter { name, value } => {
                write!(f, "invalid analog parameter {name} = {value}")
            }
            AnalogError::SingularNetwork => {
                write!(f, "netlist solve failed: singular network (floating node?)")
            }
            AnalogError::UnknownNode { index } => {
                write!(f, "netlist element references unknown node {index}")
            }
        }
    }
}

impl Error for AnalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AnalogError::SingularNetwork
            .to_string()
            .contains("singular"));
        assert!(AnalogError::UnknownNode { index: 7 }
            .to_string()
            .contains('7'));
        let e = AnalogError::InvalidParameter {
            name: "on_resistance",
            value: -2.0,
        };
        assert!(e.to_string().contains("on_resistance"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<AnalogError>();
    }
}
