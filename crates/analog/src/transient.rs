//! General linear transient simulation: the [`netlist`](crate::netlist)
//! MNA solver extended with capacitors via backward-Euler companion
//! models.
//!
//! The dedicated blocks ([`astable`](crate::astable),
//! [`sample_hold`](crate::sample_hold)) use closed-form exponential
//! updates because their topologies are fixed and first-order. This
//! module is the general tool for everything else: arbitrary RC networks
//! assembled at runtime, stepped with unconditionally stable backward
//! Euler, with every node probeable into a [`Trace`].
//! It also serves as an independent oracle for the closed-form blocks —
//! the test suite cross-validates both against each other.
//!
//! # Example: an RC low-pass step response
//!
//! ```
//! use eh_analog::transient::DynamicCircuit;
//! use eh_units::{Farads, Ohms, Seconds, Volts};
//!
//! let mut ckt = DynamicCircuit::new();
//! let vin = ckt.node();
//! let vout = ckt.node();
//! let src = ckt.voltage_source(vin, DynamicCircuit::GROUND, Volts::new(3.3))?;
//! ckt.resistor(vin, vout, Ohms::from_kilo(10.0))?;
//! ckt.capacitor(vout, DynamicCircuit::GROUND, Farads::from_micro(1.0), Volts::ZERO)?;
//! // τ = 10 ms; after 30 ms the output is ~95 % of the rail.
//! for _ in 0..300 {
//!     ckt.step(Seconds::from_milli(0.1))?;
//! }
//! let v = ckt.voltage(vout)?;
//! assert!((v.value() - 3.3 * 0.95).abs() < 0.02);
//! # ckt.set_source(src, Volts::ZERO)?;
//! # Ok::<(), eh_analog::AnalogError>(())
//! ```

use eh_units::{Farads, Ohms, Seconds, Volts};

use crate::error::AnalogError;
use crate::netlist::Netlist;
use crate::trace::Trace;

/// A node handle (shared convention with [`Netlist`]).
pub type Node = usize;

/// Handle to a settable voltage source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceId(usize);

#[derive(Debug, Clone)]
struct CapacitorState {
    a: Node,
    b: Node,
    capacitance: Farads,
    voltage: f64,
}

#[derive(Debug, Clone)]
struct SourceState {
    pos: Node,
    neg: Node,
    volts: f64,
}

/// A runtime-assembled linear circuit with resistors, capacitors and
/// settable ideal voltage sources, stepped by backward Euler.
#[derive(Debug, Clone, Default)]
pub struct DynamicCircuit {
    node_count: usize,
    resistors: Vec<(Node, Node, f64)>,
    capacitors: Vec<CapacitorState>,
    sources: Vec<SourceState>,
    last_voltages: Vec<f64>,
    time: f64,
}

impl DynamicCircuit {
    /// The ground reference node.
    pub const GROUND: Node = 0;

    /// Creates a circuit containing only ground.
    pub fn new() -> Self {
        Self {
            node_count: 1,
            resistors: Vec::new(),
            capacitors: Vec::new(),
            sources: Vec::new(),
            last_voltages: vec![0.0],
            time: 0.0,
        }
    }

    /// Allocates a node.
    pub fn node(&mut self) -> Node {
        let n = self.node_count;
        self.node_count += 1;
        self.last_voltages.push(0.0);
        n
    }

    /// Simulated time.
    pub fn time(&self) -> Seconds {
        Seconds::new(self.time)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive resistance.
    pub fn resistor(&mut self, a: Node, b: Node, r: Ohms) -> Result<(), AnalogError> {
        self.check(a)?;
        self.check(b)?;
        if !(r.value().is_finite() && r.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "resistance",
                value: r.value(),
            });
        }
        self.resistors.push((a, b, r.value()));
        Ok(())
    }

    /// Adds a capacitor with an initial voltage `v(a) − v(b)`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive capacitance.
    pub fn capacitor(
        &mut self,
        a: Node,
        b: Node,
        c: Farads,
        initial: Volts,
    ) -> Result<(), AnalogError> {
        self.check(a)?;
        self.check(b)?;
        if !(c.value().is_finite() && c.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "capacitance",
                value: c.value(),
            });
        }
        self.capacitors.push(CapacitorState {
            a,
            b,
            capacitance: c,
            voltage: initial.value(),
        });
        Ok(())
    }

    /// Adds a settable ideal voltage source and returns its handle.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-finite voltage.
    pub fn voltage_source(
        &mut self,
        pos: Node,
        neg: Node,
        v: Volts,
    ) -> Result<SourceId, AnalogError> {
        self.check(pos)?;
        self.check(neg)?;
        if !v.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "voltage",
                value: v.value(),
            });
        }
        self.sources.push(SourceState {
            pos,
            neg,
            volts: v.value(),
        });
        Ok(SourceId(self.sources.len() - 1))
    }

    /// Changes a source's value (e.g. a stimulus step between steps).
    ///
    /// # Errors
    ///
    /// Rejects unknown source handles and non-finite voltage.
    pub fn set_source(&mut self, id: SourceId, v: Volts) -> Result<(), AnalogError> {
        if !v.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "voltage",
                value: v.value(),
            });
        }
        self.sources
            .get_mut(id.0)
            .ok_or(AnalogError::UnknownNode { index: id.0 })?
            .volts = v.value();
        Ok(())
    }

    /// The most recently solved voltage of a node (zero before the first
    /// step).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn voltage(&self, node: Node) -> Result<Volts, AnalogError> {
        self.last_voltages
            .get(node)
            .map(|&v| Volts::new(v))
            .ok_or(AnalogError::UnknownNode { index: node })
    }

    /// The stored voltage of the `idx`-th capacitor (in insertion order).
    pub fn capacitor_voltage(&self, idx: usize) -> Option<Volts> {
        self.capacitors.get(idx).map(|c| Volts::new(c.voltage))
    }

    /// Advances the circuit by one backward-Euler step of length `dt`.
    ///
    /// Each capacitor is replaced by its companion model (a conductance
    /// `C/dt` in parallel with a history current source `C/dt·v_prev`);
    /// the resulting resistive network is solved exactly by the MNA
    /// solver, then the capacitor states are updated from the solution.
    ///
    /// # Errors
    ///
    /// Rejects non-positive `dt`; propagates singular-network errors.
    pub fn step(&mut self, dt: Seconds) -> Result<(), AnalogError> {
        if !(dt.value().is_finite() && dt.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "dt",
                value: dt.value(),
            });
        }
        let mut net = Netlist::new();
        // Mirror node allocation (ground already exists).
        for _ in 1..self.node_count {
            net.node();
        }
        for &(a, b, r) in &self.resistors {
            net.resistor(a, b, Ohms::new(r))?;
        }
        for src in &self.sources {
            net.voltage_source(src.pos, src.neg, Volts::new(src.volts))?;
        }
        for cap in &self.capacitors {
            let g = cap.capacitance.value() / dt.value();
            net.resistor(cap.a, cap.b, Ohms::new(1.0 / g))?;
            // History source injects G·v_prev into the + node.
            net.current_source(cap.b, cap.a, eh_units::Amps::new(g * cap.voltage))?;
        }
        let sol = net.solve()?;
        for node in 0..self.node_count {
            self.last_voltages[node] = sol.voltage(node)?.value();
        }
        for cap in &mut self.capacitors {
            cap.voltage = self.last_voltages[cap.a] - self.last_voltages[cap.b];
        }
        self.time += dt.value();
        Ok(())
    }

    /// Runs for `duration` with fixed step `dt`, recording `node` into a
    /// named trace.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_probe(
        &mut self,
        node: Node,
        name: &str,
        duration: Seconds,
        dt: Seconds,
    ) -> Result<Trace, AnalogError> {
        self.check(node)?;
        let mut trace = Trace::new(name);
        let steps = (duration.value() / dt.value()).ceil() as usize;
        for _ in 0..steps {
            self.step(dt)?;
            trace.record(self.time(), self.last_voltages[node]);
        }
        Ok(trace)
    }

    fn check(&self, n: Node) -> Result<(), AnalogError> {
        if n < self.node_count {
            Ok(())
        } else {
            Err(AnalogError::UnknownNode { index: n })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc;

    /// RC low-pass charging: backward Euler converges to the analytic
    /// exponential as dt shrinks.
    #[test]
    fn rc_step_response_matches_analytic() {
        let run = |dt_ms: f64| -> f64 {
            let mut ckt = DynamicCircuit::new();
            let vin = ckt.node();
            let vout = ckt.node();
            ckt.voltage_source(vin, DynamicCircuit::GROUND, Volts::new(1.0))
                .unwrap();
            ckt.resistor(vin, vout, Ohms::from_kilo(1.0)).unwrap();
            ckt.capacitor(
                vout,
                DynamicCircuit::GROUND,
                Farads::from_micro(1.0),
                Volts::ZERO,
            )
            .unwrap();
            // Simulate exactly one time constant (1 ms).
            let steps = (1.0 / dt_ms).round() as usize;
            for _ in 0..steps {
                ckt.step(Seconds::from_milli(dt_ms)).unwrap();
            }
            ckt.voltage(vout).unwrap().value()
        };
        let analytic = rc::relax(
            Volts::ZERO,
            Volts::new(1.0),
            Seconds::from_milli(1.0),
            Seconds::from_milli(1.0),
        )
        .value();
        let coarse = (run(0.1) - analytic).abs();
        let fine = (run(0.01) - analytic).abs();
        assert!(fine < 0.002, "fine-step error {fine}");
        assert!(
            fine < coarse,
            "backward Euler must converge: {coarse} → {fine}"
        );
    }

    #[test]
    fn capacitive_divider_splits_a_step() {
        // Two equal caps in series across a suddenly applied source split
        // it evenly (charge conservation).
        let mut ckt = DynamicCircuit::new();
        let top = ckt.node();
        let mid = ckt.node();
        let src = ckt
            .voltage_source(top, DynamicCircuit::GROUND, Volts::ZERO)
            .unwrap();
        ckt.capacitor(top, mid, Farads::from_nano(100.0), Volts::ZERO)
            .unwrap();
        ckt.capacitor(
            mid,
            DynamicCircuit::GROUND,
            Farads::from_nano(100.0),
            Volts::ZERO,
        )
        .unwrap();
        // A large bleed keeps the middle node defined.
        ckt.resistor(mid, DynamicCircuit::GROUND, Ohms::new(1e12))
            .unwrap();
        ckt.set_source(src, Volts::new(2.0)).unwrap();
        ckt.step(Seconds::from_nano(100.0)).unwrap();
        let mid_v = ckt.voltage(mid).unwrap().value();
        assert!((mid_v - 1.0).abs() < 1e-3, "mid = {mid_v}");
    }

    #[test]
    fn source_step_mid_run() {
        let mut ckt = DynamicCircuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        let src = ckt
            .voltage_source(vin, DynamicCircuit::GROUND, Volts::new(3.3))
            .unwrap();
        ckt.resistor(vin, vout, Ohms::from_kilo(10.0)).unwrap();
        ckt.capacitor(
            vout,
            DynamicCircuit::GROUND,
            Farads::from_micro(1.0),
            Volts::ZERO,
        )
        .unwrap();
        for _ in 0..1000 {
            ckt.step(Seconds::from_milli(0.1)).unwrap();
        }
        assert!((ckt.voltage(vout).unwrap().value() - 3.3).abs() < 0.01);
        // Drop the source: discharge follows.
        ckt.set_source(src, Volts::ZERO).unwrap();
        for _ in 0..100 {
            ckt.step(Seconds::from_milli(0.1)).unwrap();
        }
        let v = ckt.voltage(vout).unwrap().value();
        let expect = 3.3 * (-1.0f64).exp();
        assert!((v - expect).abs() < 0.05, "v = {v} vs {expect}");
    }

    #[test]
    fn two_pole_filter_is_slower_than_one_pole() {
        let one_pole = {
            let mut ckt = DynamicCircuit::new();
            let vin = ckt.node();
            let vout = ckt.node();
            ckt.voltage_source(vin, DynamicCircuit::GROUND, Volts::new(1.0))
                .unwrap();
            ckt.resistor(vin, vout, Ohms::from_kilo(10.0)).unwrap();
            ckt.capacitor(
                vout,
                DynamicCircuit::GROUND,
                Farads::from_nano(100.0),
                Volts::ZERO,
            )
            .unwrap();
            let trace = ckt
                .run_probe(
                    vout,
                    "one",
                    Seconds::from_milli(1.0),
                    Seconds::from_micro(10.0),
                )
                .unwrap();
            trace.value_at(Seconds::from_milli(1.0)).unwrap()
        };
        let two_pole = {
            let mut ckt = DynamicCircuit::new();
            let vin = ckt.node();
            let mid = ckt.node();
            let vout = ckt.node();
            ckt.voltage_source(vin, DynamicCircuit::GROUND, Volts::new(1.0))
                .unwrap();
            ckt.resistor(vin, mid, Ohms::from_kilo(10.0)).unwrap();
            ckt.capacitor(
                mid,
                DynamicCircuit::GROUND,
                Farads::from_nano(100.0),
                Volts::ZERO,
            )
            .unwrap();
            ckt.resistor(mid, vout, Ohms::from_kilo(10.0)).unwrap();
            ckt.capacitor(
                vout,
                DynamicCircuit::GROUND,
                Farads::from_nano(100.0),
                Volts::ZERO,
            )
            .unwrap();
            let trace = ckt
                .run_probe(
                    vout,
                    "two",
                    Seconds::from_milli(1.0),
                    Seconds::from_micro(10.0),
                )
                .unwrap();
            trace.value_at(Seconds::from_milli(1.0)).unwrap()
        };
        assert!(
            two_pole < one_pole,
            "two-pole {two_pole} vs one-pole {one_pole}"
        );
        assert!(two_pole > 0.1, "but it does move");
    }

    /// Cross-validation: the sample-and-hold settle transient built from
    /// primitive R/C elements agrees with the behavioural block's
    /// closed-form result.
    #[test]
    fn cross_validates_sample_hold_settling() {
        use crate::sample_hold::{SampleHold, SampleHoldConfig};

        // Behavioural block: one 10 ms sampling step of a 5.44 V input.
        let mut sh =
            SampleHold::new(SampleHoldConfig::paper_configuration(0.298).unwrap()).unwrap();
        sh.step(Volts::new(5.44), true, Seconds::from_milli(10.0));
        let behavioural = sh.hold_voltage().value();

        // Primitive circuit: buffered divider output (ideal source at the
        // tap value) through U2 output resistance + switch Ron into the
        // hold capacitor.
        let mut ckt = DynamicCircuit::new();
        let drive = ckt.node();
        let hold = ckt.node();
        ckt.voltage_source(drive, DynamicCircuit::GROUND, Volts::new(5.44 * 0.298))
            .unwrap();
        ckt.resistor(drive, hold, Ohms::from_kilo(3.0)).unwrap(); // 2k buffer + 1k switch
        ckt.capacitor(
            hold,
            DynamicCircuit::GROUND,
            Farads::from_micro(1.0),
            Volts::ZERO,
        )
        .unwrap();
        for _ in 0..1000 {
            ckt.step(Seconds::from_micro(10.0)).unwrap();
        }
        let primitive = ckt.voltage(hold).unwrap().value();
        assert!(
            (behavioural - primitive).abs() < 0.01,
            "behavioural {behavioural} vs primitive {primitive}"
        );
    }

    #[test]
    fn validation_and_probes() {
        let mut ckt = DynamicCircuit::new();
        let n = ckt.node();
        assert!(ckt.resistor(n, 99, Ohms::new(1.0)).is_err());
        assert!(ckt.resistor(n, DynamicCircuit::GROUND, Ohms::ZERO).is_err());
        assert!(ckt
            .capacitor(n, DynamicCircuit::GROUND, Farads::ZERO, Volts::ZERO)
            .is_err());
        assert!(ckt.step(Seconds::ZERO).is_err());
        assert!(ckt.voltage(99).is_err());
        assert!(ckt.set_source(SourceId(5), Volts::ZERO).is_err());
        assert_eq!(ckt.capacitor_voltage(0), None);
    }
}
