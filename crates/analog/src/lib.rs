//! Behavioural analog circuit substrate for the DATE 2011 MPPT
//! reproduction.
//!
//! The paper's contribution is an *analog* metrology chain: a micropower
//! comparator astable multivibrator that generates the PULSE timing, and
//! a sample-and-hold circuit (input buffer → analog switch → low-leakage
//! hold capacitor → output buffer) that freezes a fraction of the PV
//! module's open-circuit voltage on the `HELD_SAMPLE` line. This crate
//! models those circuits at behavioural level with the parameters that
//! determine the paper's figures of merit:
//!
//! * supply currents of every active part (LMC7215-class comparators,
//!   micropower op-amp buffers) — integrated by a [`CurrentLedger`] to
//!   reproduce the measured 7.6 µA average draw (§IV-A);
//! * RC timing of the astable (39 ms ON / 69 s OFF);
//! * switch on-resistance, charge injection and off-leakage, capacitor
//!   self-leakage and buffer bias currents — which set the sampling
//!   settling time, the `HELD_SAMPLE` ripple of Fig. 4, and the hold
//!   droop over the 69 s hold period.
//!
//! Two supporting facilities are included: an exact first-order [`rc`]
//! integrator (the circuits here are piecewise-RC, so exponential updates
//! are exact rather than approximate), and a small modified-nodal-analysis
//! [`netlist`] DC solver used for resistive divider networks under load.
//!
//! # Example: the paper's astable timing
//!
//! ```
//! use eh_analog::astable::AstableMultivibrator;
//!
//! let astable = AstableMultivibrator::paper_configuration()?;
//! let (t_on, t_off) = astable.analytic_periods();
//! assert!((t_on.as_milli() - 39.0).abs() < 2.0);
//! assert!((t_off.value() - 69.0).abs() < 3.0);
//! # Ok::<(), eh_analog::AnalogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astable;
pub mod components;
mod error;
mod ledger;
pub mod netlist;
pub mod phase;
pub mod rc;
pub mod sample_hold;
mod trace;
pub mod transient;

pub use error::AnalogError;
pub use ledger::{CurrentLedger, LedgerEntry};
pub use trace::{Trace, TracePolicy};
