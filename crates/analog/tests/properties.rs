//! Property-based tests on the analog substrate invariants.

use eh_analog::astable::{AstableConfig, AstableMultivibrator};
use eh_analog::components::{Capacitor, VoltageDivider};
use eh_analog::netlist::Netlist;
use eh_analog::rc;
use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_units::{Farads, Ohms, Seconds, Volts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact RC update never overshoots its target.
    #[test]
    fn relax_never_overshoots(v0 in -10.0..10.0f64, target in -10.0..10.0f64,
                              tau in 1e-6..100.0f64, dt in 0.0..1000.0f64) {
        let v = rc::relax(Volts::new(v0), Volts::new(target), Seconds::new(tau), Seconds::new(dt));
        let lo = v0.min(target) - 1e-12;
        let hi = v0.max(target) + 1e-12;
        prop_assert!(v.value() >= lo && v.value() <= hi, "v = {v}");
    }

    /// Composing two RC steps equals one combined step.
    #[test]
    fn relax_composes(v0 in -5.0..5.0f64, target in -5.0..5.0f64,
                      tau in 0.01..10.0f64, dt1 in 0.0..10.0f64, dt2 in 0.0..10.0f64) {
        let tau = Seconds::new(tau);
        let a = rc::relax(Volts::new(v0), Volts::new(target), tau, Seconds::new(dt1));
        let two = rc::relax(a, Volts::new(target), tau, Seconds::new(dt2));
        let one = rc::relax(Volts::new(v0), Volts::new(target), tau, Seconds::new(dt1 + dt2));
        prop_assert!((two.value() - one.value()).abs() < 1e-9);
    }

    /// time_to_reach inverts relax on reachable pairs.
    #[test]
    fn time_to_reach_inverts_relax(v0 in 0.0..3.0f64, tau in 0.01..10.0f64, dt in 0.001..5.0f64) {
        // Past ~20 τ the response is numerically at the asymptote and the
        // crossing time is no longer recoverable.
        prop_assume!(dt < 20.0 * tau);
        let target = Volts::new(5.0);
        let v1 = rc::relax(Volts::new(v0), target, Seconds::new(tau), Seconds::new(dt));
        let t = rc::time_to_reach(Volts::new(v0), v1, target, Seconds::new(tau)).unwrap();
        prop_assert!((t.value() - dt).abs() < 1e-6 * dt.max(1.0));
    }

    /// A loaded divider always reads at or below its unloaded ratio.
    #[test]
    fn loaded_divider_sags(top in 1e3..1e7f64, bottom in 1e3..1e7f64,
                           load in 1e3..1e9f64, vin in 0.1..10.0f64) {
        let mut net = Netlist::new();
        let input = net.node();
        let tap = net.node();
        net.voltage_source(input, Netlist::GROUND, Volts::new(vin)).unwrap();
        net.resistor(input, tap, Ohms::new(top)).unwrap();
        net.resistor(tap, Netlist::GROUND, Ohms::new(bottom)).unwrap();
        net.resistor(tap, Netlist::GROUND, Ohms::new(load)).unwrap();
        let loaded = net.solve().unwrap().voltage(tap).unwrap().value();
        let unloaded = VoltageDivider::new(Ohms::new(top), Ohms::new(bottom))
            .unwrap()
            .output(Volts::new(vin))
            .value();
        prop_assert!(loaded <= unloaded + 1e-9);
        prop_assert!(loaded >= 0.0);
    }

    /// Netlist node voltages in a purely resistive divider chain are
    /// bounded by the source voltage.
    #[test]
    fn netlist_voltages_bounded(r1 in 1.0..1e6f64, r2 in 1.0..1e6f64, r3 in 1.0..1e6f64,
                                vin in 0.0..10.0f64) {
        let mut net = Netlist::new();
        let a = net.node();
        let b = net.node();
        let c = net.node();
        net.voltage_source(a, Netlist::GROUND, Volts::new(vin)).unwrap();
        net.resistor(a, b, Ohms::new(r1)).unwrap();
        net.resistor(b, c, Ohms::new(r2)).unwrap();
        net.resistor(c, Netlist::GROUND, Ohms::new(r3)).unwrap();
        let sol = net.solve().unwrap();
        for node in [b, c] {
            let v = sol.voltage(node).unwrap().value();
            prop_assert!(v >= -1e-9 && v <= vin + 1e-9);
        }
        // Monotone down the chain.
        prop_assert!(sol.voltage(b).unwrap() >= sol.voltage(c).unwrap());
    }

    /// Astable duty cycle equals t_on/(t_on+t_off) for any valid periods.
    #[test]
    fn astable_duty_matches_config(t_on_ms in 1.0..1000.0f64, t_off_s in 0.1..200.0f64) {
        let config = AstableConfig::from_periods(
            Volts::new(3.3),
            Farads::from_micro(1.0),
            Ohms::from_mega(10.0),
            Seconds::from_milli(t_on_ms),
            Seconds::new(t_off_s),
        ).unwrap();
        let astable = AstableMultivibrator::new(config).unwrap();
        let expect = (t_on_ms * 1e-3) / (t_on_ms * 1e-3 + t_off_s);
        prop_assert!((astable.duty_cycle() - expect).abs() < 1e-6);
        let (t_on, t_off) = astable.analytic_periods();
        prop_assert!((t_on.as_milli() - t_on_ms).abs() < 1e-6 * t_on_ms.max(1.0));
        prop_assert!((t_off.value() - t_off_s).abs() < 1e-6 * t_off_s.max(1.0));
    }

    /// Stepping the astable in many small steps or one big step yields
    /// the same number of transitions.
    #[test]
    fn astable_step_size_invariance(chunks in 1usize..50) {
        let total = Seconds::new(2.5 * 69.04);
        let mut one = AstableMultivibrator::paper_configuration().unwrap();
        let big = one.step(total);
        let mut many = AstableMultivibrator::paper_configuration().unwrap();
        let mut transitions = 0;
        for _ in 0..chunks {
            transitions += many.step(total / chunks as f64).transitions;
        }
        prop_assert_eq!(big.transitions, transitions);
        prop_assert_eq!(big.output_high, many.output_high());
    }

    /// The sample-and-hold output approaches ratio·Vin for any Vin and
    /// any trim ratio, and the held value never exceeds the input.
    #[test]
    fn sample_hold_tracks_ratio(vin in 0.5..8.0f64, ratio in 0.1..0.6f64) {
        let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(ratio).unwrap()).unwrap();
        sh.step(Volts::new(vin), true, Seconds::from_milli(39.0));
        let held = sh.held_sample().value();
        prop_assert!((held - vin * ratio).abs() < 0.01 * vin.max(1.0), "held = {held}");
        prop_assert!(held <= vin);
    }

    /// Droop over a hold phase is monotone in the hold duration.
    #[test]
    fn droop_monotone_in_hold_time(hold1 in 1.0..60.0f64, extra in 1.0..60.0f64) {
        let build = || {
            let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298).unwrap()).unwrap();
            sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
            sh
        };
        let mut short = build();
        short.step(Volts::ZERO, false, Seconds::new(hold1));
        let mut long = build();
        long.step(Volts::ZERO, false, Seconds::new(hold1 + extra));
        prop_assert!(long.hold_voltage() <= short.hold_voltage());
    }

    /// Capacitor energy is non-negative and scales with V².
    #[test]
    fn capacitor_energy_quadratic(v in 0.0..10.0f64) {
        let mut c = Capacitor::polyester(Farads::from_micro(1.0)).unwrap();
        c.set_voltage(Volts::new(v));
        let e1 = c.stored_energy().value();
        c.set_voltage(Volts::new(2.0 * v));
        let e2 = c.stored_energy().value();
        prop_assert!(e1 >= 0.0);
        prop_assert!((e2 - 4.0 * e1).abs() < 1e-12 + 1e-9 * e1);
    }
}
