//! The sharded fleet runner.
//!
//! ```text
//! FleetSpec ──FleetContext::prepare──▶ population + traces + pool
//!     │                                        │
//!     │              ┌─ per-node engine ───────┤ shards ──▶ SweepRunner
//!     └─ Engine ─────┤                         │               │ fold
//!                    └─ batch engine (SoA) ────┘               ▼
//!                       FleetReport ◀──merge in shard index order
//! ```
//!
//! Each worker claims shards of nodes, simulates them against its
//! placement's shared base trace (perturbed per node) and the shared
//! warmed PV surface, and folds the single-node reports locally; the
//! per-shard aggregates merge in shard index order. The result is
//! bit-for-bit identical at any worker count.
//!
//! Three engines execute a shard: the per-node oracle (one boxed
//! tracker and store per node, the reference semantics), the batch
//! engine in [`crate::batch`] (struct-of-arrays lane state,
//! devirtualized tracker/store, fused PV lookups), which produces
//! bit-identical reports roughly an order of magnitude faster, and the
//! wide-lane vectorized engine in [`crate::vectorized`], which trades
//! bit-identity for a bounded-divergence contract and another large
//! step-throughput multiple.

use eh_sim::{BatchRunner, SweepRunner};

use crate::batch;
use crate::compare::TrackerKind;
use crate::context::FleetContext;
use crate::error::FleetError;
use crate::report::FleetReport;
use crate::spec::FleetSpec;
use crate::vectorized;

/// Which shard-execution engine a fleet run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Engine {
    /// The reference engine: one boxed tracker, store and simulation
    /// per node. Slow but maximally simple — the oracle the batch
    /// engine is equivalence-tested against.
    PerNode,
    /// The struct-of-arrays batch engine ([`crate::batch`]): whole
    /// shards advance with devirtualized lane state and fused PV
    /// lookups, bit-identical to [`Engine::PerNode`].
    Batch,
    /// The wide-lane vectorized engine ([`crate::vectorized`]): lane
    /// packs step in lockstep with strength-reduced physics (incremental
    /// load phase, energy-domain supercap, cursored PV reads). Not
    /// bit-identical to the oracle — counts and classifications are
    /// exact, energies agree to rel 1e-9, and the engine is
    /// bit-identical to itself at any worker count and shard size.
    Vectorized,
}

impl Engine {
    /// Every engine, reference first.
    pub const ALL: [Engine; 3] = [Engine::PerNode, Engine::Batch, Engine::Vectorized];

    /// Stable label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Engine::PerNode => "per-node",
            Engine::Batch => "batch",
            Engine::Vectorized => "vectorized",
        }
    }

    /// Parses a CLI/env spelling (`per-node`, `per_node`, `batch`,
    /// `vectorized`, ...).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.trim().to_ascii_lowercase().as_str() {
            "per-node" | "per_node" | "pernode" | "node" | "oracle" => Some(Engine::PerNode),
            "batch" | "batched" => Some(Engine::Batch),
            "vectorized" | "vector" | "wide" | "lanes" => Some(Engine::Vectorized),
            _ => None,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs fleets: a [`SweepRunner`] plus a shard size.
///
/// The shard size trades scheduling overhead against load balance; it
/// never affects the per-node outcomes (see
/// [`eh_sim::SweepRunner::run_merged`]'s order contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    runner: SweepRunner,
    shard_size: usize,
}

impl FleetRunner {
    /// Default nodes per shard.
    pub const DEFAULT_SHARD_SIZE: usize = 32;

    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            runner: SweepRunner::new(workers),
            shard_size: Self::DEFAULT_SHARD_SIZE,
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self {
            runner: SweepRunner::auto(),
            shard_size: Self::DEFAULT_SHARD_SIZE,
        }
    }

    /// Overrides the shard size (clamped to at least 1).
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.runner.workers()
    }

    /// The nodes-per-shard granularity.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs the fleet with each node's own FOCV tracker (the paper's
    /// technique, jittered per unit).
    ///
    /// # Errors
    ///
    /// Propagates spec validation and simulation errors; on multiple
    /// node failures the first in fleet order is returned.
    pub fn run(&self, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
        self.run_tracker(spec, TrackerKind::Focv)
    }

    /// Runs the same seeded population under an arbitrary tracker kind
    /// — the building block of
    /// [`compare_trackers_over_fleet`](crate::compare_trackers_over_fleet).
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker(
        &self,
        spec: &FleetSpec,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let ctx = FleetContext::prepare(spec)?;
        self.run_tracker_prepared(&ctx, kind)
    }

    /// [`FleetRunner::run`] against an already-prepared context,
    /// skipping the per-run setup (population, traces, surface warm).
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_prepared(&self, ctx: &FleetContext) -> Result<FleetReport, FleetError> {
        self.run_tracker_prepared(ctx, TrackerKind::Focv)
    }

    /// [`FleetRunner::run_tracker`] against an already-prepared context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker_prepared(
        &self,
        ctx: &FleetContext,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let population = ctx.population().to_vec();
        let simulate =
            |_idx: usize, node: crate::population::NodeSpec| ctx.simulate_node(kind, node);
        let report = merged_or_empty(self.runner.run_merged(
            population,
            self.shard_size,
            simulate,
        )?)?;
        Ok(Self::stamp_fleet_counters(report))
    }

    /// Runs the fleet through the batch engine (FOCV tracker).
    ///
    /// Bit-identical to [`FleetRunner::run`]: same outcomes in the same
    /// order at any worker count, and the same merged metrics at equal
    /// shard size.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_batched(&self, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
        self.run_tracker_batched(spec, TrackerKind::Focv)
    }

    /// Runs an arbitrary tracker kind through the batch engine.
    ///
    /// Only [`TrackerKind::Focv`] has a dedicated fast lane; other
    /// kinds fall back to the per-node oracle inside each shard (still
    /// bit-identical, not faster).
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker_batched(
        &self,
        spec: &FleetSpec,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let ctx = FleetContext::prepare(spec)?;
        self.run_tracker_batched_prepared(&ctx, kind)
    }

    /// [`FleetRunner::run_batched`] against an already-prepared context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_batched_prepared(&self, ctx: &FleetContext) -> Result<FleetReport, FleetError> {
        self.run_tracker_batched_prepared(ctx, TrackerKind::Focv)
    }

    /// [`FleetRunner::run_tracker_batched`] against an
    /// already-prepared context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker_batched_prepared(
        &self,
        ctx: &FleetContext,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let batch_runner = BatchRunner::from_runner(self.runner, self.shard_size)?;
        let population = ctx.population().to_vec();
        let report = merged_or_empty(batch_runner.run_shards(population, |_idx, nodes| {
            batch::simulate_shard(ctx, kind, nodes)
        }))?;
        Ok(Self::stamp_fleet_counters(report))
    }

    /// Runs the fleet through the vectorized engine (FOCV tracker).
    ///
    /// Holds the bounded-divergence contract against [`FleetRunner::run`]
    /// (see [`Engine::Vectorized`]) rather than bit-identity.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_vectorized(&self, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
        self.run_tracker_vectorized(spec, TrackerKind::Focv)
    }

    /// Runs an arbitrary tracker kind through the vectorized engine.
    ///
    /// Only [`TrackerKind::Focv`] on a `pv_cache` fleet has a wide
    /// lane; everything else delegates to the batch engine and stays
    /// bit-identical to the oracle.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker_vectorized(
        &self,
        spec: &FleetSpec,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let ctx = FleetContext::prepare(spec)?;
        self.run_tracker_vectorized_prepared(&ctx, kind)
    }

    /// [`FleetRunner::run_vectorized`] against an already-prepared
    /// context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_vectorized_prepared(&self, ctx: &FleetContext) -> Result<FleetReport, FleetError> {
        self.run_tracker_vectorized_prepared(ctx, TrackerKind::Focv)
    }

    /// [`FleetRunner::run_tracker_vectorized`] against an
    /// already-prepared context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker_vectorized_prepared(
        &self,
        ctx: &FleetContext,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let batch_runner = BatchRunner::from_runner(self.runner, self.shard_size)?;
        let population = ctx.population().to_vec();
        let report = merged_or_empty(batch_runner.run_shards(population, |_idx, nodes| {
            vectorized::simulate_shard(ctx, kind, nodes)
        }))?;
        Ok(Self::stamp_fleet_counters(report))
    }

    /// Dispatches to [`FleetRunner::run_tracker`],
    /// [`FleetRunner::run_tracker_batched`] or
    /// [`FleetRunner::run_tracker_vectorized`] by `engine`.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_engine(
        &self,
        spec: &FleetSpec,
        kind: TrackerKind,
        engine: Engine,
    ) -> Result<FleetReport, FleetError> {
        let ctx = FleetContext::prepare(spec)?;
        self.run_engine_prepared(&ctx, kind, engine)
    }

    /// [`FleetRunner::run_engine`] against an already-prepared context.
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_engine_prepared(
        &self,
        ctx: &FleetContext,
        kind: TrackerKind,
        engine: Engine,
    ) -> Result<FleetReport, FleetError> {
        match engine {
            Engine::PerNode => self.run_tracker_prepared(ctx, kind),
            Engine::Batch => self.run_tracker_batched_prepared(ctx, kind),
            Engine::Vectorized => self.run_tracker_vectorized_prepared(ctx, kind),
        }
    }

    /// Fleet-scope counters are folded after the merge so they are
    /// recorded exactly once regardless of sharding or engine.
    fn stamp_fleet_counters(report: FleetReport) -> FleetReport {
        report.with_fleet_counters()
    }
}

/// Lifts an optional merge result into a [`FleetError`]: a run that
/// produced no aggregate (zero nodes, or every shard dropped before
/// yielding one) is an [`FleetError::EmptyFleet`], not a panic.
pub(crate) fn merged_or_empty<T>(merged: Option<Result<T, FleetError>>) -> Result<T, FleetError> {
    merged.ok_or(FleetError::EmptyFleet)?
}

/// Runs `spec` through the batch engine — the free-function spelling of
/// [`FleetRunner::run_batched`].
///
/// # Errors
///
/// As [`FleetRunner::run`].
pub fn run_fleet_batched(
    spec: &FleetSpec,
    runner: &FleetRunner,
) -> Result<FleetReport, FleetError> {
    runner.run_batched(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Placement, Tolerances};
    use eh_units::Seconds;

    /// A small fleet that still exercises every placement, sized so the
    /// test-suite run stays fast: 10-minute trace grid, 10-minute step.
    fn small_spec() -> FleetSpec {
        let mut spec = FleetSpec::mixed_indoor_outdoor(24, 2011).unwrap();
        spec.trace_decimate = 600;
        spec.dt = Seconds::new(600.0);
        spec
    }

    #[test]
    fn fleet_runs_and_aggregates_every_node() {
        let report = FleetRunner::new(2).run(&small_spec()).unwrap();
        assert_eq!(report.nodes(), 24);
        assert!(report.net_energy_percentiles().is_some());
        assert!(report.worst_node().is_some());
        let placed: usize = Placement::ALL
            .iter()
            .map(|&p| report.placement_count(p))
            .sum();
        assert_eq!(placed, 24);
    }

    #[test]
    fn empty_merge_is_an_error_not_a_panic() {
        // Regression: both engine paths used to `.expect` on the merged
        // shard fold, so a fleet that produced no outcomes panicked
        // instead of erroring.
        let lifted: Result<FleetReport, FleetError> = merged_or_empty(None);
        assert!(matches!(lifted, Err(FleetError::EmptyFleet)));
        let passthrough = merged_or_empty(Some(Err::<FleetReport, _>(FleetError::EmptyFleet)));
        assert!(passthrough.is_err());
    }

    #[test]
    fn heterogeneity_spreads_the_outcomes() {
        let report = FleetRunner::new(1).run(&small_spec()).unwrap();
        let p = report
            .net_energy_percentiles()
            .expect("non-empty fleet has percentiles");
        assert!(
            p.p95 > p.p5,
            "a toleranced fleet must not collapse to one outcome: {p:?}"
        );
    }

    #[test]
    fn zero_tolerance_single_placement_fleet_collapses() {
        let mut spec = small_spec();
        spec.tolerances = Tolerances::none();
        spec.placements = crate::PlacementMix::new(0.0, 1.0, 0.0).unwrap();
        let report = FleetRunner::new(2).run(&spec).unwrap();
        let p = report
            .net_energy_percentiles()
            .expect("non-empty fleet has percentiles");
        // Identical hardware and identical light: only the power-up
        // phase differs, which perturbs day-scale energy marginally.
        let spread = (p.p95 - p.p5).abs();
        let scale = p.p50.abs().max(1e-12);
        assert!(
            spread / scale < 0.05,
            "golden fleet spread {spread:.3e} vs median {scale:.3e}"
        );
    }

    #[test]
    fn obs_fleet_metrics_merge_worker_invariant_and_conserve() {
        let mut spec = small_spec();
        spec.obs = true;
        let one = FleetRunner::new(1).run(&spec).unwrap();
        let two = FleetRunner::new(2).run(&spec).unwrap();
        let m = one
            .metrics
            .as_ref()
            .expect("obs spec carries a fleet store");
        assert_eq!(
            one.metrics, two.metrics,
            "merged metrics depend on worker count"
        );
        assert_eq!(m.counter("fleet.nodes"), 24);
        assert_eq!(
            m.counter("node.measurements"),
            one.outcomes
                .iter()
                .map(|o| o.report.measurements)
                .sum::<u64>()
        );
        // The fleet ledger must balance the summed closed-loop node
        // accounting: overhead + conversion losses + load served +
        // control-law compute.
        let closed_loop: f64 = one
            .outcomes
            .iter()
            .map(|o| {
                o.report.overhead_energy.value()
                    + o.report.loss_energy.value()
                    + o.report.load_served.value()
                    + o.report.compute_energy.value()
            })
            .sum();
        let rel = m
            .ledger()
            .relative_error(eh_units::Joules::new(closed_loop));
        assert!(
            rel < 1e-9,
            "fleet ledger drifts from closed loop: {rel:.3e}"
        );
        // Per-node reports stay lean: every store was hoisted out.
        assert!(one.outcomes.iter().all(|o| o.report.metrics.is_none()));
    }

    #[test]
    fn oracle_fleet_dominates_focv_fleet() {
        let spec = small_spec();
        let runner = FleetRunner::new(2);
        let focv = runner.run(&spec).unwrap();
        let oracle = runner.run_tracker(&spec, TrackerKind::Oracle).unwrap();
        let net = |r: &FleetReport| {
            r.net_energy_percentiles()
                .expect("non-empty fleet has percentiles")
                .p50
        };
        assert!(net(&oracle) >= net(&focv));
    }

    #[test]
    fn batch_engine_matches_per_node_engine_on_the_small_fleet() {
        let spec = small_spec();
        let runner = FleetRunner::new(2);
        let per_node = runner.run(&spec).unwrap();
        let batched = runner.run_batched(&spec).unwrap();
        assert_eq!(per_node, batched);
        assert_eq!(
            run_fleet_batched(&spec, &runner).unwrap(),
            batched,
            "free function must match the method spelling"
        );
    }

    #[test]
    fn prepared_runs_match_unprepared_runs() {
        let spec = small_spec();
        let runner = FleetRunner::new(1);
        let ctx = FleetContext::prepare(&spec).unwrap();
        assert_eq!(
            runner.run_prepared(&ctx).unwrap(),
            runner.run(&spec).unwrap()
        );
        assert_eq!(
            runner.run_batched_prepared(&ctx).unwrap(),
            runner.run_batched(&spec).unwrap()
        );
    }

    #[test]
    fn engine_labels_parse_and_dispatch() {
        assert_eq!(Engine::parse("batch"), Some(Engine::Batch));
        assert_eq!(Engine::parse("per-node"), Some(Engine::PerNode));
        assert_eq!(Engine::parse("PER_NODE"), Some(Engine::PerNode));
        assert_eq!(Engine::parse("warp"), None);
        assert_eq!(Engine::parse("vectorized"), Some(Engine::Vectorized));
        for engine in Engine::ALL {
            assert_eq!(Engine::parse(engine.label()), Some(engine));
            assert_eq!(engine.to_string(), engine.label());
        }
        let spec = small_spec();
        let runner = FleetRunner::new(1);
        assert_eq!(
            runner
                .run_engine(&spec, TrackerKind::Focv, Engine::Batch)
                .unwrap(),
            runner
                .run_engine(&spec, TrackerKind::Focv, Engine::PerNode)
                .unwrap()
        );
        // The vectorized engine is not bit-identical (bounded-divergence
        // contract, pinned by the vectorized_equivalence suite), but it
        // must dispatch and cover the same fleet.
        let vectorized = runner
            .run_engine(&spec, TrackerKind::Focv, Engine::Vectorized)
            .unwrap();
        assert_eq!(vectorized.nodes(), 24);
    }
}
