//! The sharded fleet runner.
//!
//! ```text
//! FleetSpec ──population()──▶ [NodeSpec; N] ──shards──▶ SweepRunner
//!     │                                                    │ fold per shard
//!     └─▶ base day traces + warmed surface pool (shared)   ▼
//!                       FleetReport ◀──merge in shard index order
//! ```
//!
//! Each worker claims shards of nodes, simulates them against its
//! placement's shared base trace (perturbed per node) and the shared
//! warmed PV surface, and folds the single-node reports locally; the
//! per-shard aggregates merge in shard index order. The result is
//! bit-for-bit identical at any worker count.

use eh_converter::{ColdStart, InputRegulatedConverter};
use eh_env::{week, TimeSeries};
use eh_node::{NodeSimulation, SimConfig};
use eh_sim::SweepRunner;
use eh_units::Lux;

use crate::compare::TrackerKind;
use crate::error::FleetError;
use crate::pool::SurfacePool;
use crate::population::NodeSpec;
use crate::report::{FleetReport, NodeOutcome};
use crate::spec::{FleetSpec, Placement};

/// Runs fleets: a [`SweepRunner`] plus a shard size.
///
/// The shard size trades scheduling overhead against load balance; it
/// never affects the result (see
/// [`eh_sim::SweepRunner::run_merged`]'s order contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    runner: SweepRunner,
    shard_size: usize,
}

impl FleetRunner {
    /// Default nodes per shard.
    pub const DEFAULT_SHARD_SIZE: usize = 32;

    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            runner: SweepRunner::new(workers),
            shard_size: Self::DEFAULT_SHARD_SIZE,
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self {
            runner: SweepRunner::auto(),
            shard_size: Self::DEFAULT_SHARD_SIZE,
        }
    }

    /// Overrides the shard size (clamped to at least 1).
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.runner.workers()
    }

    /// The nodes-per-shard granularity.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Runs the fleet with each node's own FOCV tracker (the paper's
    /// technique, jittered per unit).
    ///
    /// # Errors
    ///
    /// Propagates spec validation and simulation errors; on multiple
    /// node failures the first in fleet order is returned.
    pub fn run(&self, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
        self.run_tracker(spec, TrackerKind::Focv)
    }

    /// Runs the same seeded population under an arbitrary tracker kind
    /// — the building block of
    /// [`compare_trackers_over_fleet`](crate::compare_trackers_over_fleet).
    ///
    /// # Errors
    ///
    /// As [`FleetRunner::run`].
    pub fn run_tracker(
        &self,
        spec: &FleetSpec,
        kind: TrackerKind,
    ) -> Result<FleetReport, FleetError> {
        let population = spec.population()?;

        // Shared inputs, built once: one base trace per day kind (the
        // two office placements share the office day) and one warmed
        // PV surface per placement temperature in use.
        let in_use: Vec<Placement> = Placement::ALL
            .into_iter()
            .filter(|p| population.iter().any(|n| n.placement == *p))
            .collect();
        let mut traces: [Option<TimeSeries>; 3] = [None, None, None];
        for &p in &in_use {
            let existing = in_use
                .iter()
                .take_while(|q| **q != p)
                .find(|q| q.day_kind() == p.day_kind())
                .map(|q| traces[q.index()].clone().expect("earlier placement traced"));
            traces[p.index()] = Some(match existing {
                Some(t) => t,
                None => week::day(p.day_kind(), spec.seed).decimate(spec.trace_decimate)?,
            });
        }
        let pool = SurfacePool::warm(&spec.cell, in_use.iter().copied(), spec.pv_cache)?;
        let cold = ColdStart::paper_prototype()?;
        let knee = cold.enable_threshold() + cold.diode_drop();

        let simulate = |_idx: usize, node: NodeSpec| -> Result<FleetReport, FleetError> {
            let base = traces[node.placement.index()]
                .as_ref()
                .expect("every placement in use has a base trace");
            let trace = node.perturbation.apply(base);
            let cell = pool
                .cell(node.placement)
                .expect("every placement in use has a warmed cell")
                .clone();

            // Analytic cold-start feasibility: at this node's own peak
            // illuminance, the module must push the supervisor's C1
            // past the enable threshold through the steering diode
            // while out-supplying the supervisor's quiescent draw.
            let peak = Lux::new(trace.max());
            let cold_start_ok = cell.open_circuit_voltage(peak)? > knee
                && cell.current_at(knee, peak)? > cold.supervisor_current();

            let mut tracker = kind.build(&node, &cell)?;
            let config = SimConfig {
                cell,
                converter: InputRegulatedConverter::paper_prototype()?,
                measurement_dwell: node.pulse_width,
                load: spec.load.clone(),
                store: spec.store.build()?,
                pv_cache: spec.pv_cache,
                obs: spec.obs,
            };
            let report = NodeSimulation::new(config)?.run(tracker.as_mut(), &trace, spec.dt)?;
            Ok(FleetReport::single(
                &spec.name,
                NodeOutcome {
                    id: node.id,
                    placement: node.placement,
                    cold_start_ok,
                    report,
                },
            ))
        };

        let mut report = self
            .runner
            .run_merged(population, self.shard_size, simulate)
            .expect("validated specs have at least one node")?;
        // Fleet-scope counters are folded after the merge so they are
        // recorded exactly once regardless of sharding.
        if let Some(m) = report.metrics.as_mut() {
            use eh_obs::Recorder as _;
            m.add_counter("fleet.nodes", report.outcomes.len() as u64);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Tolerances;
    use eh_units::Seconds;

    /// A small fleet that still exercises every placement, sized so the
    /// test-suite run stays fast: 10-minute trace grid, 10-minute step.
    fn small_spec() -> FleetSpec {
        let mut spec = FleetSpec::mixed_indoor_outdoor(24, 2011).unwrap();
        spec.trace_decimate = 600;
        spec.dt = Seconds::new(600.0);
        spec
    }

    #[test]
    fn fleet_runs_and_aggregates_every_node() {
        let report = FleetRunner::new(2).run(&small_spec()).unwrap();
        assert_eq!(report.nodes(), 24);
        assert!(report.net_energy_percentiles().is_some());
        assert!(report.worst_node().is_some());
        let placed: usize = Placement::ALL
            .iter()
            .map(|&p| report.placement_count(p))
            .sum();
        assert_eq!(placed, 24);
    }

    #[test]
    fn heterogeneity_spreads_the_outcomes() {
        let report = FleetRunner::new(1).run(&small_spec()).unwrap();
        let p = report.net_energy_percentiles().unwrap();
        assert!(
            p.p95 > p.p5,
            "a toleranced fleet must not collapse to one outcome: {p:?}"
        );
    }

    #[test]
    fn zero_tolerance_single_placement_fleet_collapses() {
        let mut spec = small_spec();
        spec.tolerances = Tolerances::none();
        spec.placements = crate::PlacementMix::new(0.0, 1.0, 0.0).unwrap();
        let report = FleetRunner::new(2).run(&spec).unwrap();
        let p = report.net_energy_percentiles().unwrap();
        // Identical hardware and identical light: only the power-up
        // phase differs, which perturbs day-scale energy marginally.
        let spread = (p.p95 - p.p5).abs();
        let scale = p.p50.abs().max(1e-12);
        assert!(
            spread / scale < 0.05,
            "golden fleet spread {spread:.3e} vs median {scale:.3e}"
        );
    }

    #[test]
    fn obs_fleet_metrics_merge_worker_invariant_and_conserve() {
        let mut spec = small_spec();
        spec.obs = true;
        let one = FleetRunner::new(1).run(&spec).unwrap();
        let two = FleetRunner::new(2).run(&spec).unwrap();
        let m = one
            .metrics
            .as_ref()
            .expect("obs spec carries a fleet store");
        assert_eq!(
            one.metrics, two.metrics,
            "merged metrics depend on worker count"
        );
        assert_eq!(m.counter("fleet.nodes"), 24);
        assert_eq!(
            m.counter("node.measurements"),
            one.outcomes
                .iter()
                .map(|o| o.report.measurements)
                .sum::<u64>()
        );
        // The fleet ledger must balance the summed closed-loop node
        // accounting: overhead + conversion losses + load served.
        let closed_loop: f64 = one
            .outcomes
            .iter()
            .map(|o| {
                o.report.overhead_energy.value()
                    + o.report.loss_energy.value()
                    + o.report.load_served.value()
            })
            .sum();
        let rel = m
            .ledger()
            .relative_error(eh_units::Joules::new(closed_loop));
        assert!(
            rel < 1e-9,
            "fleet ledger drifts from closed loop: {rel:.3e}"
        );
        // Per-node reports stay lean: every store was hoisted out.
        assert!(one.outcomes.iter().all(|o| o.report.metrics.is_none()));
    }

    #[test]
    fn oracle_fleet_dominates_focv_fleet() {
        let spec = small_spec();
        let runner = FleetRunner::new(2);
        let focv = runner.run(&spec).unwrap();
        let oracle = runner.run_tracker(&spec, TrackerKind::Oracle).unwrap();
        let net = |r: &FleetReport| r.net_energy_percentiles().unwrap().p50;
        assert!(net(&oracle) >= net(&focv));
    }
}
