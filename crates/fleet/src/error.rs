//! Error type for the fleet crate.

use std::error::Error;
use std::fmt;

use eh_converter::ConverterError;
use eh_core::CoreError;
use eh_env::EnvError;
use eh_node::NodeError;
use eh_pv::PvError;

/// Errors returned by fleet construction and fleet runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// An underlying node-simulation error.
    Node(NodeError),
    /// An underlying environment error.
    Env(EnvError),
    /// An underlying PV model error.
    Pv(PvError),
    /// An underlying tracker/system error.
    Core(CoreError),
    /// An underlying converter error.
    Converter(ConverterError),
    /// A fleet specification parameter was invalid.
    InvalidSpec {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A fleet run produced no node outcomes to aggregate (an empty
    /// population, or every shard erroring out before producing one).
    EmptyFleet,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Node(e) => write!(f, "node simulation: {e}"),
            FleetError::Env(e) => write!(f, "environment: {e}"),
            FleetError::Pv(e) => write!(f, "pv model: {e}"),
            FleetError::Core(e) => write!(f, "tracker: {e}"),
            FleetError::Converter(e) => write!(f, "converter: {e}"),
            FleetError::InvalidSpec { name, value } => {
                write!(f, "invalid fleet spec parameter {name} = {value}")
            }
            FleetError::EmptyFleet => {
                write!(f, "fleet run produced no node outcomes to aggregate")
            }
        }
    }
}

impl Error for FleetError {}

impl From<NodeError> for FleetError {
    fn from(e: NodeError) -> Self {
        FleetError::Node(e)
    }
}

impl From<eh_sim::SimError> for FleetError {
    fn from(e: eh_sim::SimError) -> Self {
        FleetError::Node(e.into())
    }
}

impl From<EnvError> for FleetError {
    fn from(e: EnvError) -> Self {
        FleetError::Env(e)
    }
}

impl From<PvError> for FleetError {
    fn from(e: PvError) -> Self {
        FleetError::Pv(e)
    }
}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}

impl From<ConverterError> for FleetError {
    fn from(e: ConverterError) -> Self {
        FleetError::Converter(e)
    }
}
