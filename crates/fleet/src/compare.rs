//! Replaying one seeded population against the state of the art.
//!
//! The paper's Table compares trackers on a single prototype; a fleet
//! asks the sharper question — how does each technique behave across a
//! *population* of toleranced, differently lit nodes? Because the
//! population is a pure function of the spec, every tracker sees the
//! same N nodes: same placements, same optics, same astable jitter
//! (where the tracker has an astable), same light.

use eh_core::baselines::{
    AdaptiveKFocv, FixedVoltage, FocvSampleHold, FractionalIsc, GradientDescentMppt,
    IncrementalConductance, Oracle, PerturbObserve, Photodetector, PilotCell, VariableHoldFocv,
};
use eh_core::MpptController;
use eh_pv::PvCell;

use crate::error::FleetError;
use crate::population::NodeSpec;
use crate::report::FleetReport;
use crate::run::FleetRunner;
use crate::spec::FleetSpec;

/// Every tracker family the workspace models, as fleet-runnable kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TrackerKind {
    /// The paper's FOCV sample-and-hold, jittered per node.
    Focv,
    /// FOCV with an Eq.-2-adaptive hold period.
    VariableHoldFocv,
    /// FOCV with a drift-learning fraction k.
    AdaptiveKFocv,
    /// Fixed reference voltage (Weddell'08).
    FixedVoltage,
    /// Perturb & observe hill climber.
    PerturbObserve,
    /// Gradient descent with adaptive step size.
    GradientDescent,
    /// Incremental conductance.
    IncrementalConductance,
    /// Fractional short-circuit current.
    FractionalIsc,
    /// Pilot-cell FOCV (Brunelli'08).
    PilotCell,
    /// Photodetector-steered (AmbiMax).
    Photodetector,
    /// The zero-overhead MPP oracle (upper bound).
    Oracle,
}

impl TrackerKind {
    /// Every kind, in comparison-table order (oracle last as the
    /// reference bound).
    pub const ALL: [TrackerKind; 11] = [
        TrackerKind::Focv,
        TrackerKind::VariableHoldFocv,
        TrackerKind::AdaptiveKFocv,
        TrackerKind::FixedVoltage,
        TrackerKind::PerturbObserve,
        TrackerKind::GradientDescent,
        TrackerKind::IncrementalConductance,
        TrackerKind::FractionalIsc,
        TrackerKind::PilotCell,
        TrackerKind::Photodetector,
        TrackerKind::Oracle,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            TrackerKind::Focv => "focv",
            TrackerKind::VariableHoldFocv => "focv-variable-hold",
            TrackerKind::AdaptiveKFocv => "focv-adaptive-k",
            TrackerKind::FixedVoltage => "fixed-voltage",
            TrackerKind::PerturbObserve => "perturb-observe",
            TrackerKind::GradientDescent => "gradient-descent",
            TrackerKind::IncrementalConductance => "incremental-conductance",
            TrackerKind::FractionalIsc => "fractional-isc",
            TrackerKind::PilotCell => "pilot-cell",
            TrackerKind::Photodetector => "photodetector",
            TrackerKind::Oracle => "oracle",
        }
    }

    /// Parses a CLI/env/request spelling of a tracker kind: the
    /// [`TrackerKind::label`] with `-` and `_` interchangeable, plus a
    /// few common aliases (`p&o`, `incond`, `mpp`).
    pub fn parse(s: &str) -> Option<TrackerKind> {
        let normalized = s.trim().to_ascii_lowercase().replace('_', "-");
        match normalized.as_str() {
            "focv" | "sample-hold" => Some(TrackerKind::Focv),
            "focv-variable-hold" | "variable-hold" => Some(TrackerKind::VariableHoldFocv),
            "focv-adaptive-k" | "adaptive-k" => Some(TrackerKind::AdaptiveKFocv),
            "fixed-voltage" => Some(TrackerKind::FixedVoltage),
            "perturb-observe" | "p&o" | "po" => Some(TrackerKind::PerturbObserve),
            "gradient-descent" => Some(TrackerKind::GradientDescent),
            "incremental-conductance" | "incond" => Some(TrackerKind::IncrementalConductance),
            "fractional-isc" => Some(TrackerKind::FractionalIsc),
            "pilot-cell" => Some(TrackerKind::PilotCell),
            "photodetector" => Some(TrackerKind::Photodetector),
            "oracle" | "mpp" => Some(TrackerKind::Oracle),
            _ => None,
        }
    }

    /// Builds the tracker instance for one node. Only the FOCV kind
    /// uses the node's drawn divider/astable values — the baselines
    /// have no astable to jitter — but every kind sees the node's
    /// perturbed light and placement temperature through `cell`.
    ///
    /// # Errors
    ///
    /// Propagates tracker parameter validation.
    pub(crate) fn build(
        self,
        node: &NodeSpec,
        cell: &PvCell,
    ) -> Result<Box<dyn MpptController>, FleetError> {
        Ok(match self {
            TrackerKind::Focv => Box::new(node.tracker()?),
            TrackerKind::VariableHoldFocv => Box::new(VariableHoldFocv::eq2_tuned()?),
            TrackerKind::AdaptiveKFocv => Box::new(AdaptiveKFocv::paper_tuned()?),
            TrackerKind::GradientDescent => Box::new(GradientDescentMppt::literature_default()?),
            TrackerKind::FixedVoltage => Box::new(FixedVoltage::indoor_tuned()?),
            TrackerKind::PerturbObserve => Box::new(PerturbObserve::literature_default()?),
            TrackerKind::IncrementalConductance => {
                Box::new(IncrementalConductance::literature_default()?)
            }
            TrackerKind::FractionalIsc => Box::new(FractionalIsc::literature_default()?),
            TrackerKind::PilotCell => Box::new(PilotCell::literature_default(cell.clone())?),
            TrackerKind::Photodetector => Box::new(Photodetector::literature_default()?),
            TrackerKind::Oracle => Box::new(Oracle::new(cell.clone())),
        })
    }

    /// A reference instance of the kind's display name, as reported by
    /// the tracker itself.
    pub fn tracker_name(self) -> String {
        let probe = NodeSpec {
            id: 0,
            placement: crate::Placement::InteriorDesk,
            k: FocvSampleHold::paper_prototype()
                .expect("prototype constants are valid")
                .k(),
            sample_period: eh_units::Seconds::new(69.0),
            pulse_width: eh_units::Seconds::from_milli(39.0),
            phase_offset: eh_units::Seconds::ZERO,
            perturbation: eh_env::TracePerturbation::identity(),
            store: None,
        };
        let cell = eh_pv::presets::sanyo_am1815();
        self.build(&probe, &cell)
            .expect("reference parameters are valid")
            .name()
            .to_owned()
    }
}

/// Replays the same seeded population against every [`TrackerKind`],
/// returning one merged [`FleetReport`] per kind in
/// [`TrackerKind::ALL`] order.
///
/// # Errors
///
/// Propagates the first failing fleet run.
pub fn compare_trackers_over_fleet(
    spec: &FleetSpec,
    runner: &FleetRunner,
) -> Result<Vec<(TrackerKind, FleetReport)>, FleetError> {
    compare_trackers_over_fleet_with(spec, runner, crate::Engine::PerNode)
}

/// [`compare_trackers_over_fleet`] through an explicit execution
/// engine. The shared fleet inputs (population, traces, warmed
/// surfaces) are prepared once and reused across all tracker kinds.
///
/// # Errors
///
/// Propagates the first failing fleet run.
pub fn compare_trackers_over_fleet_with(
    spec: &FleetSpec,
    runner: &FleetRunner,
    engine: crate::Engine,
) -> Result<Vec<(TrackerKind, FleetReport)>, FleetError> {
    let ctx = crate::FleetContext::prepare(spec)?;
    TrackerKind::ALL
        .iter()
        .map(|&kind| Ok((kind, runner.run_engine_prepared(&ctx, kind, engine)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Tolerances;
    use eh_units::Seconds;

    #[test]
    fn labels_and_names_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TrackerKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), TrackerKind::ALL.len());
        let names: std::collections::HashSet<_> =
            TrackerKind::ALL.iter().map(|k| k.tracker_name()).collect();
        assert_eq!(names.len(), TrackerKind::ALL.len());
    }

    #[test]
    fn every_label_round_trips_through_parse() {
        for kind in TrackerKind::ALL {
            assert_eq!(TrackerKind::parse(kind.label()), Some(kind));
            assert_eq!(
                TrackerKind::parse(&kind.label().to_ascii_uppercase().replace('-', "_")),
                Some(kind),
                "case/underscore spelling of {} must parse",
                kind.label()
            );
        }
        assert_eq!(TrackerKind::parse("warp-drive"), None);
        assert_eq!(TrackerKind::parse(""), None);
    }

    #[test]
    fn comparison_replays_the_same_population() {
        // A tiny, coarse fleet so the 11-way comparison stays fast.
        let mut spec = FleetSpec::mixed_indoor_outdoor(6, 99).unwrap();
        spec.trace_decimate = 1200;
        spec.dt = Seconds::new(1200.0);
        spec.tolerances = Tolerances::production_batch();
        let rows = compare_trackers_over_fleet(&spec, &FleetRunner::new(2)).unwrap();
        assert_eq!(rows.len(), TrackerKind::ALL.len());
        for (kind, report) in &rows {
            assert_eq!(report.nodes(), 6, "{} lost nodes", kind.label());
        }
        // Same population: placements line up across trackers.
        let placements = |r: &FleetReport| -> Vec<_> {
            r.outcomes.iter().map(|o| (o.id, o.placement)).collect()
        };
        let reference = placements(&rows[0].1);
        for (_, report) in &rows[1..] {
            assert_eq!(placements(report), reference);
        }
        // The oracle bounds everyone's median net energy.
        let median = |r: &FleetReport| {
            r.net_energy_percentiles()
                .expect("six-node fleets have percentiles")
                .p50
        };
        let oracle = median(&rows.last().unwrap().1);
        for (kind, report) in &rows {
            assert!(
                median(report) <= oracle + 1e-9,
                "{} beat the oracle",
                kind.label()
            );
        }
        // The analog kinds charge no compute energy; the digital kinds
        // must report it as a separate, nonzero column.
        for (kind, report) in &rows {
            let compute = report
                .compute_energy_percentiles()
                .expect("six-node fleets have percentiles")
                .p50;
            match kind {
                TrackerKind::Focv | TrackerKind::Oracle | TrackerKind::FixedVoltage => {
                    assert_eq!(compute, 0.0, "{} is analog", kind.label());
                }
                TrackerKind::PerturbObserve | TrackerKind::GradientDescent => {
                    assert!(compute > 0.0, "{} must charge compute", kind.label());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zero_node_spec_errors_instead_of_panicking() {
        // Regression: an empty fleet used to reach a `.expect` deep in
        // the shard-merge path and panic the whole comparison; it must
        // surface as a FleetError instead.
        let mut spec = FleetSpec::mixed_indoor_outdoor(6, 99).unwrap();
        spec.nodes = 0;
        for engine in crate::Engine::ALL {
            let err = compare_trackers_over_fleet_with(&spec, &FleetRunner::new(2), engine);
            assert!(err.is_err(), "{engine:?} must reject an empty fleet");
        }
    }
}
