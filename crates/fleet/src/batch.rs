//! The batch-stepped fleet engine.
//!
//! The per-node engine in [`crate::context::FleetContext::simulate_node`]
//! pays a heavy toll per step: every PV lookup, tracker decision and
//! store update goes through a `dyn` seam (`MpptController`,
//! `EnergyStore`, `Box<dyn ...>`), and a `Connect` step asks the PV
//! surface two separate questions (Voc, then operating current). This
//! module advances a whole *shard* of nodes with all of those seams
//! devirtualized into flat struct-of-arrays lane state:
//!
//! ```text
//!        shard of NodeSpec (fleet order)
//!            │ build lanes (SoA)
//!            ▼
//!  kernels[] lanes[] stores[] accs[] traces[] ...   ← one slot per node
//!            │ visit lanes grouped by placement      (cache locality:
//!            ▼                                        shared surface)
//!  FocvLaneStepper ──eh_sim::drive──▶ NodeReport per lane
//!            │ fold in ORIGINAL fleet order
//!            ▼
//!        FleetReport (bit-identical to the per-node engine)
//! ```
//!
//! The fast lane exists for [`TrackerKind::Focv`] (the paper's
//! technique, and the one fleets run by default): its tracker state
//! machine is transcribed into the `Copy`-able
//! [`FocvKernel`]/[`FocvLane`] pair, the store is the enum-dispatched
//! [`ConcreteStore`], and a `Connect` step resolves Voc and operating
//! current in one fused [`eh_pv::CachedPvSurface::connect_point`]
//! lookup. Every floating-point operation happens in the same order and
//! on the same values as the per-node oracle, so the resulting
//! [`FleetReport`] is bit-identical — a contract enforced by the
//! `batch_equivalence` test suite. All other tracker kinds fall back to
//! folding the oracle per node inside the shard, which is equivalent by
//! construction.
//!
//! Cold-start feasibility is batched too: the per-lane supervisor
//! currents are evaluated in one [`eh_pv::CachedPvSurface::eval_many`]
//! sweep per placement group (scalar fallback on error keeps per-lane
//! error attribution).

use eh_converter::InputRegulatedConverter;
use eh_core::baselines::{FocvDecision, FocvKernel, FocvLane};
use eh_env::TimeSeries;
use eh_node::{ConcreteStore, DutyCycledLoad, EnergyStore, NodeError, NodeReport, ObsLocals};
use eh_obs::{Metrics, Recorder};
use eh_pv::{CachedPvSurface, ConnectPoint, PvCell, PvError};
use eh_sim::{drive, Accumulator, Light, Mergeable, StepInput, StepOutput, Stepper};
use eh_units::{Amps, Joules, Lux, Seconds, Volts};

use crate::compare::TrackerKind;
use crate::context::FleetContext;
use crate::error::FleetError;
use crate::population::NodeSpec;
use crate::report::{FleetReport, NodeOutcome};
use crate::run::merged_or_empty;
use crate::spec::{FleetSpec, Placement};

/// Simulates one shard of nodes and folds their reports in fleet order —
/// the batch-engine counterpart of the per-node shard fold inside
/// [`eh_sim::SweepRunner::run_merged`].
pub(crate) fn simulate_shard(
    ctx: &FleetContext,
    kind: TrackerKind,
    nodes: Vec<NodeSpec>,
) -> Result<FleetReport, FleetError> {
    if kind == TrackerKind::Focv {
        simulate_shard_focv(ctx, nodes)
    } else {
        // Compatibility lane: no batched transcription exists for this
        // tracker, so fold the per-node oracle over the shard — the
        // same sequential fold `run_merged` performs.
        let mut merged: Option<Result<FleetReport, FleetError>> = None;
        for node in nodes {
            let single = ctx.simulate_node(kind, node);
            match merged.as_mut() {
                None => merged = Some(single),
                Some(m) => m.merge(single),
            }
        }
        merged_or_empty(merged)
    }
}

/// Per-lane constant state built from one [`NodeSpec`]: the
/// devirtualized tracker (kernel + initial lane), the concrete store,
/// and the tracker's report name.
pub(crate) type LaneBuild = (FocvKernel, FocvLane, ConcreteStore, String);

/// Builds one lane, replicating the per-node engine's error precedence:
/// tracker construction, then store construction, then the
/// `measurement_dwell` validation [`eh_node::NodeSimulation::new`]
/// performs.
pub(crate) fn build_lane(spec: &FleetSpec, node: &NodeSpec) -> Result<LaneBuild, FleetError> {
    let tracker = node.tracker()?;
    let store = node.store.unwrap_or(spec.store).build_concrete()?;
    let dwell = node.pulse_width;
    if !(dwell.value().is_finite() && dwell.value() > 0.0) {
        return Err(NodeError::InvalidParameter {
            name: "measurement_dwell",
            value: dwell.value(),
        }
        .into());
    }
    let name = eh_core::MpptController::name(&tracker).to_owned();
    Ok((tracker.kernel(), tracker.lane(), store, name))
}

/// The FOCV fast lane: struct-of-arrays lane state, placement-grouped
/// sweep, fleet-order fold.
fn simulate_shard_focv(
    ctx: &FleetContext,
    nodes: Vec<NodeSpec>,
) -> Result<FleetReport, FleetError> {
    let spec = ctx.spec();
    let n = nodes.len();
    let converter = InputRegulatedConverter::paper_prototype()?;

    // Stage 1 — lane-constant state, one slot per node in fleet order.
    let mut traces: Vec<TimeSeries> = Vec::with_capacity(n);
    let mut peaks: Vec<Lux> = Vec::with_capacity(n);
    let mut builds: Vec<Option<Result<LaneBuild, FleetError>>> = Vec::with_capacity(n);
    for node in &nodes {
        let trace = node.perturbation.apply(ctx.base_trace(node.placement));
        peaks.push(Lux::new(trace.max()));
        traces.push(trace);
        builds.push(Some(build_lane(spec, node)));
    }

    // Stage 2 — batched cold-start feasibility (same math and call
    // sequence as the per-node engine: Voc at the node's own peak must
    // clear the supervisor knee, and the current at the knee must
    // out-supply the supervisor's quiescent draw).
    let cold = cold_start_lanes(ctx, &nodes, &peaks);

    // Stage 3 — drive the lanes, grouped by placement so consecutive
    // lanes hit the same warmed PV surface. Results land back in their
    // fleet-order slots.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| nodes[i].placement.index());
    let mut sims: Vec<Option<Result<NodeReport, FleetError>>> = Vec::with_capacity(n);
    sims.resize_with(n, || None);
    for &i in &order {
        let build = builds[i].take().expect("each lane is built exactly once");
        let result = match build {
            Err(e) => Err(e),
            Ok((kernel, lane, store, name)) => {
                let cell = ctx.cell(nodes[i].placement);
                match LaneCell::resolve(cell, spec.pv_cache) {
                    Err(e) => Err(e.into()),
                    Ok(lane_cell) => {
                        let stepper = FocvLaneStepper {
                            kernel,
                            lane,
                            cell: lane_cell,
                            converter: &converter,
                            store,
                            load: spec.load.as_ref(),
                            measurement_dwell: nodes[i].pulse_width,
                            acc: Accumulator::new(),
                            last_voc: None,
                            obs: ObsLocals::default(),
                            metrics: spec.obs.then(Box::default),
                        };
                        stepper
                            .run(&traces[i], spec.dt, name)
                            .map_err(FleetError::from)
                    }
                }
            }
        };
        sims[i] = Some(result);
    }

    // Fold in fleet order with the same `Mergeable` semantics as the
    // per-node engine: per node, the cold-start result is consulted
    // before the simulation result; across nodes, the first error in
    // fleet order wins.
    let mut merged: Option<Result<FleetReport, FleetError>> = None;
    for (i, node) in nodes.iter().enumerate() {
        let sim = sims[i].take().expect("each lane is simulated exactly once");
        let single = match (cold[i].clone(), sim) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (Ok(cold_start_ok), Ok(report)) => Ok(FleetReport::single(
                &spec.name,
                NodeOutcome {
                    id: node.id,
                    placement: node.placement,
                    cold_start_ok,
                    report,
                },
            )),
        };
        match merged.as_mut() {
            None => merged = Some(single),
            Some(m) => m.merge(single),
        }
    }
    merged_or_empty(merged)
}

/// Per-lane cold-start feasibility, batched.
///
/// Voc screening stays scalar (one lookup per lane); the follow-up
/// supervisor-current evaluations of all Voc-passing lanes are swept in
/// one [`CachedPvSurface::eval_many`] call per placement group. On an
/// `eval_many` error the group falls back to scalar evaluation so the
/// failure is attributed to the lane that caused it, exactly as the
/// per-node engine would.
pub(crate) fn cold_start_lanes(
    ctx: &FleetContext,
    nodes: &[NodeSpec],
    peaks: &[Lux],
) -> Vec<Result<bool, FleetError>> {
    let knee = ctx.knee();
    let quiescent = ctx.cold().supervisor_current();
    let mut cold: Vec<Result<bool, FleetError>> = nodes
        .iter()
        .zip(peaks)
        .map(|(node, &peak)| {
            let cell = ctx.cell(node.placement);
            cell.open_circuit_voltage(peak)
                .map(|voc| voc > knee)
                .map_err(FleetError::from)
        })
        .collect();

    for p in Placement::ALL {
        let candidates: Vec<usize> = (0..nodes.len())
            .filter(|&i| nodes[i].placement == p && matches!(cold[i], Ok(true)))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let cell = ctx.cell(p);
        let swept = if ctx.spec().pv_cache {
            cell.cached().ok().and_then(|surface| {
                let mut v_lux = Vec::with_capacity(candidates.len() * 2);
                for &i in &candidates {
                    v_lux.push(knee.value());
                    v_lux.push(peaks[i].value());
                }
                let mut out = vec![0.0; candidates.len()];
                surface.eval_many(&v_lux, &mut out).ok()?;
                Some(out)
            })
        } else {
            None
        };
        match swept {
            Some(out) => {
                for (j, &i) in candidates.iter().enumerate() {
                    cold[i] = Ok(Amps::new(out[j]) > quiescent);
                }
            }
            // Scalar path: cache disabled, or the batched sweep failed
            // and each lane re-evaluates to own its error.
            None => {
                for &i in &candidates {
                    cold[i] = cell
                        .current_at(knee, peaks[i])
                        .map(|amps| amps > quiescent)
                        .map_err(FleetError::from);
                }
            }
        }
    }
    cold
}

/// A lane's view of its placement's PV cell, devirtualized.
enum LaneCell<'a> {
    /// The memoized surface: `Connect` steps use the fused
    /// [`CachedPvSurface::connect_point`] lookup.
    Cached(&'a CachedPvSurface),
    /// The exact solver path (`pv_cache: false`), emulating
    /// `connect_point` with the per-node engine's exact call sequence.
    Exact(&'a PvCell),
}

impl<'a> LaneCell<'a> {
    fn resolve(cell: &'a PvCell, pv_cache: bool) -> Result<Self, PvError> {
        if pv_cache {
            Ok(Self::Cached(cell.cached()?))
        } else {
            Ok(Self::Exact(cell))
        }
    }

    #[inline]
    fn open_circuit_voltage(&self, lux: Lux) -> Result<Volts, PvError> {
        match self {
            Self::Cached(surface) => surface.open_circuit_voltage(lux),
            Self::Exact(cell) => cell.open_circuit_voltage(lux),
        }
    }

    #[inline]
    fn connect_point(&self, target: Volts, lux: Lux) -> Result<ConnectPoint, PvError> {
        match self {
            Self::Cached(surface) => surface.connect_point(target, lux),
            Self::Exact(cell) => {
                let voc = cell.open_circuit_voltage(lux)?;
                let v_op = target.min(voc);
                let current = if v_op.value() > 0.0 {
                    Some(cell.current_at(v_op, lux)?)
                } else {
                    None
                };
                Ok(ConnectPoint { voc, v_op, current })
            }
        }
    }
}

/// One batched FOCV lane as a steppable system: the per-node engine's
/// `NodeStepper` with every `dyn` seam replaced by a concrete type, and
/// the `Connect` PV double-lookup fused into one `connect_point` call.
/// Every arithmetic operation matches the oracle's order and operands.
struct FocvLaneStepper<'a> {
    kernel: FocvKernel,
    lane: FocvLane,
    cell: LaneCell<'a>,
    converter: &'a InputRegulatedConverter,
    store: ConcreteStore,
    load: Option<&'a DutyCycledLoad>,
    measurement_dwell: Seconds,
    acc: Accumulator,
    last_voc: Option<Volts>,
    obs: ObsLocals,
    metrics: Option<Box<Metrics>>,
}

impl FocvLaneStepper<'_> {
    /// Drives the lane over its trace and assembles the [`NodeReport`]
    /// exactly as [`eh_node::NodeSimulation::run`] does.
    fn run(
        mut self,
        trace: &TimeSeries,
        dt: Seconds,
        tracker_name: String,
    ) -> Result<NodeReport, NodeError> {
        let light = Light::trace(trace);
        drive(&mut self, &light, dt)?;
        let acc = self.acc;
        let mut metrics = self.metrics.take().map(|b| *b);
        if let Some(m) = metrics.as_mut() {
            // Per-step locals land before the conservation check.
            self.obs.flush(m);
            m.add_counter("node.measurements", acc.measurements);
            // The FOCV tracker is analog (ComputeCost::ZERO); the
            // counters and the conservation term are mirrored anyway so
            // both engines record identical stores.
            m.add_counter("tracker.decisions", acc.decisions);
            m.add_counter("tracker.ops", 0);
            let closed_loop =
                acc.overhead_energy + acc.loss_energy + acc.load_served + acc.compute_energy;
            m.ledger().check_conservation(closed_loop, 1e-9)?;
        }
        Ok(NodeReport {
            tracker: tracker_name,
            duration: trace.duration(),
            gross_energy: acc.gross_energy,
            overhead_energy: acc.overhead_energy,
            load_demand: acc.load_demand,
            load_served: acc.load_served,
            final_store_energy: self.store.stored_energy(),
            loss_energy: acc.loss_energy,
            compute_energy: acc.compute_energy,
            measurements: acc.measurements,
            decisions: acc.decisions,
            metrics,
        })
    }
}

impl Stepper for FocvLaneStepper<'_> {
    type Error = NodeError;

    fn step(
        &mut self,
        t: Seconds,
        dt: Seconds,
        input: &StepInput,
    ) -> Result<StepOutput, NodeError> {
        let lux = input.lux;
        let decision = self.kernel.step(&mut self.lane, self.last_voc.take(), dt);
        let is_connect = matches!(decision, FocvDecision::Connect(_));
        let actual = if is_connect {
            dt
        } else {
            self.measurement_dwell.min(dt)
        };

        match decision {
            FocvDecision::Connect(target) if target.value() > 0.0 => {
                let point = self.cell.connect_point(target, lux)?;
                if let Some(current) = point.current {
                    let current = current.max(Amps::ZERO);
                    let harvest = self.converter.harvest(point.v_op, current, actual);
                    self.acc.add_harvest(harvest.output_energy);
                    self.acc.add_loss(harvest.losses * actual);
                    if self.metrics.is_some() {
                        self.obs.observe_harvest(&harvest, actual);
                    }
                    self.store.deposit(harvest.output_energy);
                }
            }
            FocvDecision::Connect(_) => {}
            FocvDecision::Measure => {
                let voc = self.cell.open_circuit_voltage(lux)?;
                self.last_voc = Some(voc);
                self.acc.count_measurement();
            }
        }

        let overhead = self.kernel.overhead_power() * actual;
        self.acc.add_overhead(overhead);
        self.store.withdraw(overhead);

        // Mirror of the per-node engine's compute charge. The FOCV
        // tracker declares ComputeCost::ZERO, so both the accumulator
        // add and the store withdraw are exact no-ops — but executing
        // them in the same order keeps the engines' arithmetic aligned.
        let compute = Joules::ZERO;
        self.acc.add_compute(compute);
        self.acc.count_decision();
        self.store.withdraw(compute);

        let mut served = Joules::ZERO;
        if let Some(load) = self.load {
            let demand = load.energy_demand(t, actual);
            served = self.store.withdraw(demand);
            self.acc.add_load(demand, served);
        }

        self.store.leak(actual);

        if self.metrics.is_some() {
            self.obs
                .observe_step(is_connect, overhead, compute, served, actual);
        }

        Ok(StepOutput::dwell(actual))
    }

    fn recorder(&mut self) -> Option<&mut Metrics> {
        self.metrics.as_deref_mut()
    }
}
