//! The wide-lane vectorized fleet engine.
//!
//! [`crate::batch`] removed the `dyn` seams; this engine removes the
//! per-step *transcendentals*. Nodes advance in struct-of-arrays lane
//! packs of fixed width [`LANES`] — plain arrays of `f64`/`u64` state
//! walked in lockstep inner loops the compiler can unroll and
//! autovectorize (the workspace stays `forbid(unsafe_code)`; there are
//! no intrinsics here) — with three strength reductions over the batch
//! stepper's per-step cost:
//!
//! 1. **Load walk**: per-step demand comes from a prefix-sum
//!    [`LoadEnergyProfile`] — whole cycles by multiplication plus two
//!    cumulative-energy reads — instead of walking the duty-cycle
//!    phase list segment by segment every step.
//! 2. **Store arithmetic**: a supercapacitor store evolves in the
//!    energy domain ([`EnergyDomainSupercap`]), so deposits and
//!    withdrawals are adds/clamps and the per-step `sqrt` count drops
//!    from three to the single one leakage genuinely needs.
//! 3. **PV lookups**: surface reads go through a per-lane
//!    [`LuxCursor`], which reuses the `ln`-derived log-lux cell index
//!    while the illuminance stays inside the current cell.
//!
//! # The bounded-divergence contract
//!
//! Unlike the batch engine, the vectorized engine is **not** bit-
//! identical to the per-node oracle — the cursor's series expansion,
//! the energy-domain store, and the prefix-sum load profile reassociate
//! a handful of float operations.
//! What it guarantees instead (enforced by the `vectorized_equivalence`
//! suite; see `DESIGN.md` §14):
//!
//! - **Counts and classifications are exact.** The engine replicates
//!   [`eh_sim::drive`]'s time arithmetic operation for operation, and
//!   FOCV decisions depend only on the step-size sequence — so step,
//!   dwell, measurement and decision counts, and every outcome
//!   classification (brown-out, cold-start failure, net-negative)
//!   equal the oracle's exactly.
//! - **Energies agree to rel 1e-9** per node (net, gross, overhead,
//!   load, losses, final store).
//! - **The engine is bit-identical to itself** at any worker count and
//!   shard size: lanes never exchange data, so pack membership cannot
//!   influence a lane's trajectory.
//!
//! Trackers without a vectorized transcription (and fleets with
//! `pv_cache: false`, whose exact-solver reads have no cursor to reuse)
//! delegate to [`crate::batch`], keeping the oracle's bit-identity.

use eh_converter::InputRegulatedConverter;
use eh_core::baselines::{FocvDecision, FocvKernel, FocvLane};
use eh_env::TimeSeries;
use eh_node::{
    ConcreteStore, EnergyDomainSupercap, EnergyStore, LoadEnergyProfile, NodeError, NodeReport,
    ObsLocals,
};
use eh_obs::{Metrics, Recorder};
use eh_pv::{CachedPvSurface, LuxCursor};
use eh_sim::{Accumulator, Mergeable, SimError};
use eh_units::{Amps, Joules, Lux, Seconds, Volts};

use crate::batch::{self, LaneBuild};
use crate::compare::TrackerKind;
use crate::context::FleetContext;
use crate::error::FleetError;
use crate::population::NodeSpec;
use crate::report::{FleetReport, NodeOutcome};
use crate::run::merged_or_empty;

/// Lanes per pack. Eight f64 lanes fill one AVX-512 register or two
/// AVX2 registers, and a pack's hot state (~1 KiB) sits comfortably in
/// L1 alongside the shared PV surface rows.
pub(crate) const LANES: usize = 8;

/// Simulates one shard of nodes through the wide-lane engine and folds
/// their reports in fleet order — the vectorized counterpart of
/// [`crate::batch::simulate_shard`].
pub(crate) fn simulate_shard(
    ctx: &FleetContext,
    kind: TrackerKind,
    nodes: Vec<NodeSpec>,
) -> Result<FleetReport, FleetError> {
    if kind != TrackerKind::Focv || !ctx.spec().pv_cache {
        // No vectorized transcription: fall through to the batch engine
        // (which itself falls back to the per-node oracle for non-FOCV
        // kinds), preserving bit-identity where no contract relaxation
        // was bought.
        return batch::simulate_shard(ctx, kind, nodes);
    }
    simulate_shard_focv(ctx, nodes)
}

/// The FOCV wide lane: identical staging to the batch engine (lane
/// builds, batched cold start, placement-grouped sweep, fleet-order
/// fold), but stage 3 steps packs of [`LANES`] lanes in lockstep.
fn simulate_shard_focv(
    ctx: &FleetContext,
    nodes: Vec<NodeSpec>,
) -> Result<FleetReport, FleetError> {
    let spec = ctx.spec();
    let n = nodes.len();
    let converter = InputRegulatedConverter::paper_prototype()?;
    // One prefix-sum profile shared by every pack; each lane carries
    // only its `f64` cycle position.
    let load_profile = spec.load.as_ref().map(|l| l.energy_profile());

    // Stage 1 — lane-constant state, one slot per node in fleet order.
    let mut traces: Vec<TimeSeries> = Vec::with_capacity(n);
    let mut peaks: Vec<Lux> = Vec::with_capacity(n);
    let mut builds: Vec<Option<Result<LaneBuild, FleetError>>> = Vec::with_capacity(n);
    for node in &nodes {
        let trace = node.perturbation.apply(ctx.base_trace(node.placement));
        peaks.push(Lux::new(trace.max()));
        traces.push(trace);
        builds.push(Some(batch::build_lane(spec, node)));
    }

    // Stage 2 — batched cold-start feasibility, shared with the batch
    // engine (bit-identical to the per-node screening).
    let cold = batch::cold_start_lanes(ctx, &nodes, &peaks);

    // Stage 3 — pack consecutive same-placement lanes and step them in
    // lockstep. Results land back in their fleet-order slots; pack
    // membership is irrelevant to any lane's outcome (lanes share only
    // the immutable surface), which is what makes the engine
    // self-bit-identical across worker counts and shard sizes.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| nodes[i].placement.index());
    let mut sims: Vec<Option<Result<NodeReport, FleetError>>> = Vec::with_capacity(n);
    sims.resize_with(n, || None);
    let mut at = 0;
    while at < order.len() {
        let placement = nodes[order[at]].placement;
        let mut end = at;
        while end < order.len() && nodes[order[end]].placement == placement {
            end += 1;
        }
        let cell = ctx.cell(placement);
        for chunk in order[at..end].chunks(LANES) {
            match cell.cached() {
                Err(e) => {
                    // Same error precedence as the batch engine: a lane
                    // that failed to build reports its own error before
                    // the shared surface's.
                    for &i in chunk {
                        let build = builds[i].take().expect("each lane is built exactly once");
                        sims[i] = Some(match build {
                            Err(build_err) => Err(build_err),
                            Ok(_) => Err(e.clone().into()),
                        });
                    }
                }
                Ok(surface) => {
                    run_pack(
                        surface,
                        &converter,
                        load_profile.as_ref(),
                        spec.dt,
                        spec.obs,
                        &nodes,
                        &traces,
                        &mut builds,
                        chunk,
                        &mut sims,
                    );
                }
            }
        }
        at = end;
    }

    // Fold in fleet order with the same `Mergeable` semantics as the
    // other engines: per node, cold start before simulation; across
    // nodes, the first error in fleet order wins.
    let mut merged: Option<Result<FleetReport, FleetError>> = None;
    for (i, node) in nodes.iter().enumerate() {
        let sim = sims[i].take().expect("each lane is simulated exactly once");
        let single = match (cold[i].clone(), sim) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (Ok(cold_start_ok), Ok(report)) => Ok(FleetReport::single(
                &spec.name,
                NodeOutcome {
                    id: node.id,
                    placement: node.placement,
                    cold_start_ok,
                    report,
                },
            )),
        };
        match merged.as_mut() {
            None => merged = Some(single),
            Some(m) => m.merge(single),
        }
    }
    merged_or_empty(merged)
}

/// A lane's energy store with the supercapacitor case strength-reduced
/// into the energy domain. Every other store kind keeps its exact
/// [`ConcreteStore`] arithmetic.
enum LaneStore {
    /// A supercapacitor evolving as stored energy: `√`-free deposits
    /// and withdrawals, one `sqrt` per leak.
    Energy(EnergyDomainSupercap),
    /// Any other concrete store, unchanged.
    Concrete(ConcreteStore),
}

impl LaneStore {
    fn new(store: ConcreteStore) -> Self {
        match store {
            ConcreteStore::Supercapacitor(sc) => {
                LaneStore::Energy(EnergyDomainSupercap::from_supercapacitor(&sc))
            }
            other => LaneStore::Concrete(other),
        }
    }

    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        match self {
            LaneStore::Energy(s) => s.deposit(energy),
            LaneStore::Concrete(s) => s.deposit(energy),
        }
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        match self {
            LaneStore::Energy(s) => s.withdraw(energy),
            LaneStore::Concrete(s) => s.withdraw(energy),
        }
    }

    #[inline]
    fn leak(&mut self, dt: Seconds) {
        match self {
            LaneStore::Energy(s) => s.leak(dt),
            LaneStore::Concrete(s) => s.leak(dt),
        }
    }

    #[inline]
    fn stored_energy(&self) -> Joules {
        match self {
            LaneStore::Energy(s) => s.stored_energy(),
            LaneStore::Concrete(s) => s.stored_energy(),
        }
    }
}

/// Steps one pack of up to [`LANES`] lanes in lockstep and writes each
/// lane's `NodeReport` (or first error) into its fleet-order slot.
///
/// The per-lane state is struct-of-arrays: parallel vectors of plain
/// scalars indexed by lane, so the inner `for l in 0..w` sweeps are
/// branch-light strided loops. A lane that errors or finishes early is
/// masked out via `done` while the rest of the pack keeps stepping.
#[allow(clippy::too_many_arguments)]
fn run_pack(
    surface: &CachedPvSurface,
    converter: &InputRegulatedConverter,
    load: Option<&LoadEnergyProfile>,
    dt: Seconds,
    obs_on: bool,
    nodes: &[NodeSpec],
    traces: &[TimeSeries],
    builds: &mut [Option<Result<LaneBuild, FleetError>>],
    chunk: &[usize],
    sims: &mut [Option<Result<NodeReport, FleetError>>],
) {
    let dt_v = dt.value();

    // ── SoA lane state ──────────────────────────────────────────────
    let mut slot: Vec<usize> = Vec::with_capacity(LANES);
    let mut kernel: Vec<FocvKernel> = Vec::with_capacity(LANES);
    let mut lane: Vec<FocvLane> = Vec::with_capacity(LANES);
    let mut store: Vec<LaneStore> = Vec::with_capacity(LANES);
    let mut name: Vec<String> = Vec::with_capacity(LANES);
    let mut dwell: Vec<f64> = Vec::with_capacity(LANES);
    // Per-lane trace view, hoisted once: sample grid + raw values.
    let mut start: Vec<f64> = Vec::with_capacity(LANES);
    let mut grid: Vec<f64> = Vec::with_capacity(LANES);
    let mut values: Vec<&[f64]> = Vec::with_capacity(LANES);
    let mut total: Vec<f64> = Vec::with_capacity(LANES);
    let mut cursor: Vec<LuxCursor> = Vec::with_capacity(LANES);
    let mut load_pos: Vec<f64> = Vec::with_capacity(LANES);
    let mut acc: Vec<Accumulator> = Vec::with_capacity(LANES);
    let mut last_voc: Vec<Option<Volts>> = Vec::with_capacity(LANES);
    let mut obsl: Vec<ObsLocals> = Vec::with_capacity(LANES);
    let mut t: Vec<f64> = Vec::with_capacity(LANES);
    let mut steps: Vec<u64> = Vec::with_capacity(LANES);
    let mut dwell_steps: Vec<u64> = Vec::with_capacity(LANES);
    let mut dwell_time: Vec<f64> = Vec::with_capacity(LANES);
    let mut done: Vec<bool> = Vec::with_capacity(LANES);
    let mut err: Vec<Option<NodeError>> = Vec::with_capacity(LANES);

    for &i in chunk {
        let build = builds[i].take().expect("each lane is built exactly once");
        match build {
            Err(e) => sims[i] = Some(Err(e)),
            Ok((k, l0, s, nm)) => {
                let trace = &traces[i];
                slot.push(i);
                kernel.push(k);
                lane.push(l0);
                store.push(LaneStore::new(s));
                name.push(nm);
                dwell.push(nodes[i].pulse_width.value());
                start.push(trace.start_time().value());
                grid.push(trace.dt().value());
                values.push(trace.values());
                total.push(trace.duration().value());
                cursor.push(LuxCursor::default());
                load_pos.push(0.0);
                acc.push(Accumulator::new());
                last_voc.push(None);
                obsl.push(ObsLocals::default());
                t.push(0.0);
                steps.push(0);
                dwell_steps.push(0);
                dwell_time.push(0.0);
                done.push(false);
                err.push(None);
            }
        }
    }
    let w = slot.len();

    // ── drive() preamble, replicated per lane ───────────────────────
    let mut active = w;
    if !(dt_v.is_finite() && dt_v > 0.0) {
        for l in 0..w {
            err[l] = Some(
                SimError::InvalidParameter {
                    name: "dt",
                    value: dt_v,
                }
                .into(),
            );
            done[l] = true;
        }
        active = 0;
    } else {
        for l in 0..w {
            if !(total[l].is_finite() && total[l] > 0.0) {
                err[l] = Some(
                    SimError::InvalidParameter {
                        name: "duration",
                        value: total[l],
                    }
                    .into(),
                );
                done[l] = true;
                active -= 1;
            }
        }
    }

    // ── lockstep stepping ───────────────────────────────────────────
    // One subslice assertion per array here instead of one bounds
    // check per access inside the hot loop: every slice's length is
    // exactly `w`, the same bound the `for l in 0..w` sweep runs to.
    {
        let kernel = &mut kernel[..w];
        let lane = &mut lane[..w];
        let store = &mut store[..w];
        let dwell = &dwell[..w];
        let start = &start[..w];
        let grid = &grid[..w];
        let values = &values[..w];
        let total = &total[..w];
        let cursor = &mut cursor[..w];
        let load_pos = &mut load_pos[..w];
        let acc = &mut acc[..w];
        let last_voc = &mut last_voc[..w];
        let obsl = &mut obsl[..w];
        let t = &mut t[..w];
        let steps = &mut steps[..w];
        let dwell_steps = &mut dwell_steps[..w];
        let dwell_time = &mut dwell_time[..w];
        let done = &mut done[..w];
        let err = &mut err[..w];
        while active > 0 {
            for l in 0..w {
                if done[l] {
                    continue;
                }
                let planned = dt_v.min(total[l] - t[l]);
                // Inline `Light::lux_at`: the query time is re-derived
                // through the series' own start offset so the division
                // matches `TimeSeries::value_at` bit for bit.
                let vs = values[l];
                let tq = start[l] + t[l];
                let rel = (tq - start[l]) / grid[l];
                let raw = if rel < 0.0 || rel > (vs.len() - 1) as f64 {
                    0.0
                } else {
                    let i = rel.floor() as usize;
                    if i + 1 >= vs.len() {
                        vs[i]
                    } else {
                        let f = rel - i as f64;
                        vs[i] * (1.0 - f) + vs[i + 1] * f
                    }
                };
                let lux = Lux::new(raw.max(0.0));

                let planned_s = Seconds::new(planned);
                let decision = kernel[l].step(&mut lane[l], last_voc[l].take(), planned_s);
                let is_connect = matches!(decision, FocvDecision::Connect(_));
                let actual = if is_connect {
                    planned
                } else {
                    dwell[l].min(planned)
                };
                let actual_s = Seconds::new(actual);

                let surface_read: Result<(), NodeError> = match decision {
                    FocvDecision::Connect(target) if target.value() > 0.0 => {
                        match surface.connect_point_lane(&mut cursor[l], target, lux) {
                            Err(e) => Err(e.into()),
                            Ok(point) => {
                                if let Some(current) = point.current {
                                    let current = current.max(Amps::ZERO);
                                    let harvest = converter.harvest(point.v_op, current, actual_s);
                                    acc[l].add_harvest(harvest.output_energy);
                                    acc[l].add_loss(harvest.losses * actual_s);
                                    if obs_on {
                                        obsl[l].observe_harvest(&harvest, actual_s);
                                    }
                                    store[l].deposit(harvest.output_energy);
                                }
                                Ok(())
                            }
                        }
                    }
                    FocvDecision::Connect(_) => Ok(()),
                    FocvDecision::Measure => {
                        match surface.open_circuit_voltage_lane(&mut cursor[l], lux) {
                            Err(e) => Err(e.into()),
                            Ok(voc) => {
                                last_voc[l] = Some(voc);
                                acc[l].count_measurement();
                                Ok(())
                            }
                        }
                    }
                };
                if let Err(e) = surface_read {
                    err[l] = Some(e);
                    done[l] = true;
                    active -= 1;
                    continue;
                }

                let overhead = kernel[l].overhead_power() * actual_s;
                acc[l].add_overhead(overhead);
                store[l].withdraw(overhead);

                // Mirror of the per-node engine's (exactly zero) compute
                // charge, kept so the accumulator arithmetic stays aligned.
                let compute = Joules::ZERO;
                acc[l].add_compute(compute);
                acc[l].count_decision();
                store[l].withdraw(compute);

                let mut served = Joules::ZERO;
                if let Some(load) = load {
                    let demand = load.energy_over(&mut load_pos[l], actual_s);
                    served = store[l].withdraw(demand);
                    acc[l].add_load(demand, served);
                }

                store[l].leak(actual_s);

                if obs_on {
                    obsl[l].observe_step(is_connect, overhead, compute, served, actual_s);
                }

                // drive()'s advance clamp and loop statistics, replicated
                // operation for operation — this is what pins the step and
                // dwell counts to the oracle's exactly.
                let advanced = if actual.is_finite() && actual > 0.0 {
                    actual.min(planned)
                } else {
                    planned
                };
                steps[l] += 1;
                if advanced < planned {
                    dwell_steps[l] += 1;
                    dwell_time[l] += advanced;
                }
                t[l] += advanced;
                if t[l] >= total[l] {
                    done[l] = true;
                    active -= 1;
                }
            }
        }
    }

    // ── per-lane epilogue: drive() stats + NodeReport assembly ──────
    for l in 0..w {
        let i = slot[l];
        let result = match err[l].take() {
            Some(e) => Err(FleetError::from(e)),
            None => finalize_lane(
                std::mem::take(&mut name[l]),
                Seconds::new(total[l]),
                &acc[l],
                &store[l],
                &obsl[l],
                steps[l],
                dwell_steps[l],
                t[l],
                dwell_time[l],
                obs_on,
            )
            .map_err(FleetError::from),
        };
        sims[i] = Some(result);
    }
}

/// Assembles one lane's [`NodeReport`] exactly as the batch stepper's
/// `run` epilogue does, including [`eh_sim::drive`]'s loop-statistic
/// recording that the lockstep loop accumulated in locals.
#[allow(clippy::too_many_arguments)]
fn finalize_lane(
    name: String,
    duration: Seconds,
    acc: &Accumulator,
    store: &LaneStore,
    obsl: &ObsLocals,
    steps: u64,
    dwell_steps: u64,
    t: f64,
    dwell_time: f64,
    obs_on: bool,
) -> Result<NodeReport, NodeError> {
    let mut metrics = obs_on.then(Metrics::new);
    if let Some(m) = metrics.as_mut() {
        m.add_counter("engine.steps", steps);
        m.add_counter("engine.dwell_steps", dwell_steps);
        let mut drive_span = eh_obs::span!("engine.drive");
        drive_span.add_time(Seconds::new(t));
        drive_span.finish(m);
        let mut dwell_span = eh_obs::span!("engine.dwell");
        dwell_span.add_time(Seconds::new(dwell_time));
        dwell_span.finish(m);
        obsl.flush(m);
        m.add_counter("node.measurements", acc.measurements);
        m.add_counter("tracker.decisions", acc.decisions);
        m.add_counter("tracker.ops", 0);
        let closed_loop =
            acc.overhead_energy + acc.loss_energy + acc.load_served + acc.compute_energy;
        m.ledger().check_conservation(closed_loop, 1e-9)?;
    }
    Ok(NodeReport {
        tracker: name,
        duration,
        gross_energy: acc.gross_energy,
        overhead_energy: acc.overhead_energy,
        load_demand: acc.load_demand,
        load_served: acc.load_served,
        final_store_energy: store.stored_energy(),
        loss_energy: acc.loss_energy,
        compute_energy: acc.compute_energy,
        measurements: acc.measurements,
        decisions: acc.decisions,
        metrics,
    })
}
