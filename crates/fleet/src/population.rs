//! Deterministic instantiation of a heterogeneous node population.
//!
//! Every per-node variation — placement, divider trim, astable timing,
//! power-up phase, optics — is drawn serially from **one** seeded
//! generator with a **fixed number of draws per node**, so the
//! population is a pure function of `(spec, seed)`: node 517 of a
//! 10 000-node fleet has the same hardware whether it is simulated
//! alone, in a 4-worker shard, or as part of a different-size batch cut
//! from the same stream.

use eh_core::baselines::FocvSampleHold;
use eh_core::MpptController;
use eh_env::TracePerturbation;
use eh_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::FleetError;
use crate::spec::{FleetSpec, Placement};

/// One instantiated node: the base design plus this unit's drawn
/// variations. Construction happens only through
/// [`FleetSpec::population`], which enforces the tolerance budget.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node index within the fleet (also its input order in sweeps).
    pub id: u32,
    /// Where this unit is deployed.
    pub placement: Placement,
    /// This unit's trimmed FOCV factor.
    pub k: f64,
    /// This unit's astable hold period.
    pub sample_period: Seconds,
    /// This unit's PULSE width (also the simulation's measurement
    /// dwell).
    pub pulse_width: Seconds,
    /// Power-up stagger of the first PULSE into the hold period,
    /// in `[0, sample_period)`.
    pub phase_offset: Seconds,
    /// The illuminance transform this unit applies to its placement's
    /// shared base trace (optics × derating, plus placement offset).
    pub perturbation: TracePerturbation,
    /// Per-node storage override. `None` (the default for drawn
    /// populations) means the unit uses the fleet-wide
    /// [`FleetSpec::store`]; campaign epochs set this to carry each
    /// node's store state (and wear) across epoch boundaries.
    pub store: Option<eh_node::StoreSpec>,
}

impl NodeSpec {
    /// Builds this unit's FOCV tracker: the drawn divider/astable
    /// values, the paper's 8 µA × 3.3 V metrology overhead, and the
    /// drawn power-up phase.
    ///
    /// # Errors
    ///
    /// Propagates tracker parameter validation (unreachable for
    /// populations built from a validated spec).
    pub fn tracker(&self) -> Result<FocvSampleHold, FleetError> {
        let proto = FocvSampleHold::paper_prototype()?;
        Ok(FocvSampleHold::new(
            self.k,
            self.sample_period,
            self.pulse_width,
            proto.overhead_power(),
        )?
        .with_initial_phase(self.phase_offset)?)
    }
}

/// Maps a uniform draw `u ∈ [0, 1)` to a symmetric relative factor
/// `1 ± pct`.
fn symmetric(u: f64, pct: f64) -> f64 {
    1.0 + pct * (2.0 * u - 1.0)
}

impl FleetSpec {
    /// Instantiates the population: `nodes` units drawn serially from
    /// `StdRng::seed_from_u64(seed)`, nine draws per node in a fixed
    /// order regardless of placement (so streams never desynchronise).
    ///
    /// # Errors
    ///
    /// Propagates [`FleetSpec::validate`]; tracker construction from the
    /// drawn values cannot fail once the tolerance budget is validated.
    pub fn population(&self) -> Result<Vec<NodeSpec>, FleetError> {
        self.validate()?;
        let proto = FocvSampleHold::paper_prototype()?;
        let tol = &self.tolerances;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut nodes = Vec::with_capacity(self.nodes as usize);
        for id in 0..self.nodes {
            // Fixed draw order, nine per node. Draw everything before
            // branching on placement.
            let u_place: f64 = rng.gen();
            let u_k: f64 = rng.gen();
            let u_cap: f64 = rng.gen();
            let u_r_hold: f64 = rng.gen();
            let u_r_pulse: f64 = rng.gen();
            let u_phase: f64 = rng.gen();
            let u_optical: f64 = rng.gen();
            let u_derate: f64 = rng.gen();
            let u_offset: f64 = rng.gen();

            let placement = self.placements.pick(u_place);
            let k = proto.k() * symmetric(u_k, tol.divider_pct);
            // One film capacitor times the two astable path resistors:
            // the hold period and the PULSE width share the capacitor
            // spread but jitter independently through their resistors.
            let c = symmetric(u_cap, tol.capacitor_pct);
            let sample_period = proto.sample_period() * (c * symmetric(u_r_hold, tol.resistor_pct));
            let pulse_width = proto.pulse_width() * (c * symmetric(u_r_pulse, tol.resistor_pct));
            let phase_offset = sample_period * u_phase;

            let gain = symmetric(u_optical, tol.pv_optical_pct) * (1.0 - u_derate * tol.derate_max);
            let offset_lux = match placement {
                // By the window: extra skylight the logged desk misses.
                Placement::WindowDesk => u_offset * tol.offset_lux,
                // Deep in the room: strictly darker than the reference
                // desk (exercises the 0 lx clamp at night).
                Placement::InteriorDesk => -u_offset * tol.offset_lux,
                // Outdoors the offset is small against daylight; keep a
                // modest two-sided term for ground albedo / horizon.
                Placement::Outdoor => (2.0 * u_offset - 1.0) * 0.2 * tol.offset_lux,
            };

            nodes.push(NodeSpec {
                id,
                placement,
                k,
                sample_period,
                pulse_width,
                phase_offset,
                perturbation: TracePerturbation::new(gain, offset_lux)?,
                store: None,
            });
        }
        Ok(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Tolerances;

    fn spec(nodes: u32, seed: u64) -> FleetSpec {
        FleetSpec::mixed_indoor_outdoor(nodes, seed).unwrap()
    }

    #[test]
    fn population_is_a_pure_function_of_the_spec() {
        let a = spec(200, 42).population().unwrap();
        let b = spec(200, 42).population().unwrap();
        assert_eq!(a, b);
        let c = spec(200, 43).population().unwrap();
        assert_ne!(a, c, "a different seed must move the population");
    }

    #[test]
    fn prefix_stability_across_fleet_sizes() {
        // The first 50 nodes of a 200-node fleet are exactly the
        // 50-node fleet: draws are serial with a fixed count per node.
        let small = spec(50, 7).population().unwrap();
        let large = spec(200, 7).population().unwrap();
        assert_eq!(small[..], large[..50]);
    }

    #[test]
    fn zero_tolerance_population_is_the_golden_prototype() {
        let mut s = spec(20, 3);
        s.tolerances = Tolerances::none();
        let proto = FocvSampleHold::paper_prototype().unwrap();
        for node in s.population().unwrap() {
            assert_eq!(node.k, proto.k());
            assert_eq!(node.sample_period, proto.sample_period());
            assert_eq!(node.pulse_width, proto.pulse_width());
            assert_eq!(node.perturbation.gain(), 1.0);
            // Placement offsets vanish with a zero budget.
            assert_eq!(node.perturbation.offset_lux(), 0.0);
            // Phase stagger remains: it models power-up time, not a
            // component tolerance.
            assert!(node.phase_offset >= Seconds::ZERO);
            assert!(node.phase_offset < node.sample_period);
        }
    }

    #[test]
    fn all_placements_appear_in_a_modest_fleet() {
        let pop = spec(100, 11).population().unwrap();
        for p in Placement::ALL {
            assert!(
                pop.iter().any(|n| n.placement == p),
                "{} missing from 100 nodes",
                p.label()
            );
        }
    }

    #[test]
    fn trackers_build_from_every_drawn_node() {
        for node in spec(300, 5).population().unwrap() {
            let t = node.tracker().unwrap();
            assert_eq!(t.k(), node.k);
            assert_eq!(t.sample_period(), node.sample_period);
            assert_eq!(t.pulse_width(), node.pulse_width);
        }
    }

    #[test]
    fn interior_offsets_are_dimming_and_window_offsets_brightening() {
        for node in spec(400, 23).population().unwrap() {
            match node.placement {
                Placement::WindowDesk => assert!(node.perturbation.offset_lux() >= 0.0),
                Placement::InteriorDesk => assert!(node.perturbation.offset_lux() <= 0.0),
                Placement::Outdoor => {
                    assert!(node.perturbation.offset_lux().abs() <= 0.2 * 150.0 + 1e-9);
                }
            }
        }
    }
}
