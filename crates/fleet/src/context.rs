//! Prepared shared inputs of a fleet run.
//!
//! Building a fleet's shared inputs — the seeded population, one base
//! day trace per placement, the warmed PV surface pool, the cold-start
//! supervisor constants — costs hundreds of milliseconds, which used to
//! be paid on every [`crate::FleetRunner::run`] call. A [`FleetContext`]
//! hoists that setup so repeated runs (tracker comparisons, benchmarks,
//! engine cross-checks) pay it once; both the per-node and the batch
//! engine execute against the same prepared context, which is also what
//! makes their outputs directly comparable.

use eh_converter::{ColdStart, InputRegulatedConverter};
use eh_env::{week, TimeSeries};
use eh_node::{NodeSimulation, SimConfig};
use eh_pv::PvCell;
use eh_units::{Lux, Volts};

use crate::compare::TrackerKind;
use crate::error::FleetError;
use crate::pool::SurfacePool;
use crate::population::NodeSpec;
use crate::report::{FleetReport, NodeOutcome};
use crate::run::Engine;
use crate::spec::{FleetSpec, Placement};

/// The shared, immutable inputs of a fleet run, prepared once: the
/// validated spec, its seeded population, one base day trace per
/// placement in use, the warmed [`SurfacePool`], and the paper's §III
/// cold-start supervisor constants.
#[derive(Debug)]
pub struct FleetContext {
    spec: FleetSpec,
    population: Vec<NodeSpec>,
    traces: [Option<TimeSeries>; 3],
    pool: SurfacePool,
    cold: ColdStart,
    knee: Volts,
}

impl FleetContext {
    /// Prepares the shared inputs for `spec`: validates it, stamps the
    /// population, decimates one base trace per day kind in use, and
    /// warms one PV surface per placement temperature.
    ///
    /// # Errors
    ///
    /// Propagates spec validation, trace construction, and surface
    /// warming failures.
    pub fn prepare(spec: &FleetSpec) -> Result<Self, FleetError> {
        let population = spec.population()?;

        // Shared inputs, built once: one base trace per day kind (the
        // two office placements share the office day) and one warmed
        // PV surface per placement temperature in use.
        let in_use: Vec<Placement> = Placement::ALL
            .into_iter()
            .filter(|p| population.iter().any(|n| n.placement == *p))
            .collect();
        let mut traces: [Option<TimeSeries>; 3] = [None, None, None];
        for &p in &in_use {
            let existing = in_use
                .iter()
                .take_while(|q| **q != p)
                .find(|q| q.day_kind() == p.day_kind())
                .map(|q| traces[q.index()].clone().expect("earlier placement traced"));
            traces[p.index()] = Some(match existing {
                Some(t) => t,
                None => week::day(p.day_kind(), spec.seed).decimate(spec.trace_decimate)?,
            });
        }
        let pool = SurfacePool::warm(&spec.cell, in_use.iter().copied(), spec.pv_cache)?;
        let cold = ColdStart::paper_prototype()?;
        let knee = cold.enable_threshold() + cold.diode_drop();

        Ok(Self {
            spec: spec.clone(),
            population,
            traces,
            pool,
            cold,
            knee,
        })
    }

    /// Prepares a context against **caller-supplied** environment traces
    /// and a pre-warmed surface pool, instead of the spec's built-in
    /// week profiles. This is the campaign layer's entry point: it
    /// synthesizes one multi-day seasonal/weather trace per placement
    /// (indexed by [`Placement::index`]) per epoch and reuses one warmed
    /// pool across every epoch, so only the cheap spec/population work
    /// is repeated.
    ///
    /// Every placement the population uses must have a trace and a
    /// warmed cell; the population itself is still drawn from the spec's
    /// seed with the standard nine-draw contract.
    ///
    /// # Errors
    ///
    /// Propagates spec validation; returns
    /// [`FleetError::InvalidSpec`] if a used placement has no trace or
    /// no warmed cell.
    pub fn prepare_with_environment(
        spec: &FleetSpec,
        traces: [Option<TimeSeries>; 3],
        pool: SurfacePool,
    ) -> Result<Self, FleetError> {
        let population = spec.population()?;
        for p in Placement::ALL {
            if population.iter().any(|n| n.placement == p) {
                if traces[p.index()].is_none() {
                    return Err(FleetError::InvalidSpec {
                        name: "environment_trace",
                        value: p.index() as f64,
                    });
                }
                if pool.cell(p).is_none() {
                    return Err(FleetError::InvalidSpec {
                        name: "environment_surface",
                        value: p.index() as f64,
                    });
                }
            }
        }
        let cold = ColdStart::paper_prototype()?;
        let knee = cold.enable_threshold() + cold.diode_drop();
        Ok(Self {
            spec: spec.clone(),
            population,
            traces,
            pool,
            cold,
            knee,
        })
    }

    /// The spec this context was prepared from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The seeded population, in fleet order.
    pub fn population(&self) -> &[NodeSpec] {
        &self.population
    }

    /// The warmed PV-surface pool, for cache accounting (eviction and
    /// occupancy counters) by callers that reuse contexts across runs.
    pub fn surface_pool(&self) -> &SurfacePool {
        &self.pool
    }

    /// Simulates one shard of nodes through the chosen engine and folds
    /// their reports in fleet order — the public per-shard entry point
    /// long-running callers (the serving layer's streaming and
    /// checkpoint/resume paths) drive directly.
    ///
    /// Folding the returned shard reports in shard index order
    /// reproduces [`crate::FleetRunner`]'s output **bit for bit** at
    /// equal shard grouping: `run_merged` performs exactly this
    /// per-shard fold followed by an in-order reduce.
    ///
    /// # Errors
    ///
    /// As [`crate::FleetRunner::run`]; an empty shard is
    /// [`FleetError::EmptyFleet`].
    pub fn simulate_shard(
        &self,
        kind: TrackerKind,
        engine: Engine,
        nodes: Vec<NodeSpec>,
    ) -> Result<FleetReport, FleetError> {
        match engine {
            Engine::Batch => crate::batch::simulate_shard(self, kind, nodes),
            Engine::Vectorized => crate::vectorized::simulate_shard(self, kind, nodes),
            Engine::PerNode => {
                use eh_sim::Mergeable as _;
                let mut merged: Option<Result<FleetReport, FleetError>> = None;
                for node in nodes {
                    let single = self.simulate_node(kind, node);
                    match merged.as_mut() {
                        None => merged = Some(single),
                        Some(m) => m.merge(single),
                    }
                }
                crate::run::merged_or_empty(merged)
            }
        }
    }

    /// The shared base trace of a placement in use.
    pub(crate) fn base_trace(&self, p: Placement) -> &TimeSeries {
        self.traces[p.index()]
            .as_ref()
            .expect("every placement in use has a base trace")
    }

    /// The warmed cell of a placement in use.
    pub(crate) fn cell(&self, p: Placement) -> &PvCell {
        self.pool
            .cell(p)
            .expect("every placement in use has a warmed cell")
    }

    /// The cold-start supervisor model.
    pub(crate) fn cold(&self) -> &ColdStart {
        &self.cold
    }

    /// The supervisor knee: enable threshold plus steering-diode drop.
    pub(crate) fn knee(&self) -> Volts {
        self.knee
    }

    /// Simulates one node with the per-node oracle engine — the body
    /// every shard worker folds over, and the reference the batch
    /// engine is equivalence-tested against.
    pub(crate) fn simulate_node(
        &self,
        kind: TrackerKind,
        node: NodeSpec,
    ) -> Result<FleetReport, FleetError> {
        let spec = &self.spec;
        let base = self.base_trace(node.placement);
        let trace = node.perturbation.apply(base);
        let cell = self.cell(node.placement).clone();

        // Analytic cold-start feasibility: at this node's own peak
        // illuminance, the module must push the supervisor's C1
        // past the enable threshold through the steering diode
        // while out-supplying the supervisor's quiescent draw.
        let peak = Lux::new(trace.max());
        let cold_start_ok = cell.open_circuit_voltage(peak)? > self.knee
            && cell.current_at(self.knee, peak)? > self.cold.supervisor_current();

        let mut tracker = kind.build(&node, &cell)?;
        let config = SimConfig {
            cell,
            converter: InputRegulatedConverter::paper_prototype()?,
            measurement_dwell: node.pulse_width,
            load: spec.load.clone(),
            store: node.store.unwrap_or(spec.store).build()?,
            pv_cache: spec.pv_cache,
            obs: spec.obs,
        };
        let report = NodeSimulation::new(config)?.run(tracker.as_mut(), &trace, spec.dt)?;
        Ok(FleetReport::single(
            &spec.name,
            NodeOutcome {
                id: node.id,
                placement: node.placement,
                cold_start_ok,
                report,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Seconds;

    #[test]
    fn prepare_hoists_population_and_traces() {
        let mut spec = FleetSpec::mixed_indoor_outdoor(12, 2011).unwrap();
        spec.trace_decimate = 600;
        spec.dt = Seconds::new(600.0);
        let ctx = FleetContext::prepare(&spec).unwrap();
        assert_eq!(ctx.population().len(), 12);
        assert_eq!(ctx.population(), spec.population().unwrap());
        for node in ctx.population() {
            // Every placement the population uses is traced and warmed.
            assert!(ctx.base_trace(node.placement).len() > 1);
            let _ = ctx.cell(node.placement);
        }
        assert!(ctx.knee().value() > 0.0);
    }

    #[test]
    fn prepare_rejects_invalid_specs() {
        let mut spec = FleetSpec::mixed_indoor_outdoor(12, 2011).unwrap();
        spec.nodes = 0;
        assert!(FleetContext::prepare(&spec).is_err());
    }
}
