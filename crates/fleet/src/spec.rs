//! Fleet specifications: one base node design plus the declared,
//! seeded spread a production batch exhibits around it.

use eh_env::week::DayKind;
use eh_node::{DutyCycledLoad, StoreSpec};
use eh_pv::{presets, PvCell};
use eh_units::{Celsius, Seconds};

use crate::error::FleetError;

/// Where a node of the fleet is deployed. The placement decides which
/// shared base light trace the node perturbs, the sign of its placement
/// offset, and its operating temperature (one memoized PV surface is
/// warmed per distinct temperature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Placement {
    /// Office desk next to the window: the shared office trace plus a
    /// positive skylight offset, slightly warm from the sun.
    WindowDesk,
    /// Interior office desk: the shared office trace minus an offset
    /// (further from the window), room temperature.
    InteriorDesk,
    /// Outdoor / semi-mobile deployment: the semi-mobile trace with the
    /// lunchtime excursion, warmest cell.
    Outdoor,
}

impl Placement {
    /// Every placement, in the fixed order used for indexing.
    pub const ALL: [Placement; 3] = [
        Placement::WindowDesk,
        Placement::InteriorDesk,
        Placement::Outdoor,
    ];

    /// Stable index of this placement in [`Placement::ALL`].
    pub fn index(self) -> usize {
        match self {
            Placement::WindowDesk => 0,
            Placement::InteriorDesk => 1,
            Placement::Outdoor => 2,
        }
    }

    /// The daily light scenario nodes of this placement share.
    pub fn day_kind(self) -> DayKind {
        match self {
            Placement::WindowDesk | Placement::InteriorDesk => DayKind::Office,
            Placement::Outdoor => DayKind::SemiMobile,
        }
    }

    /// The cell operating temperature of this placement. Distinct
    /// temperatures need distinct memoized PV surfaces, so the fleet
    /// runner warms exactly one per placement in use.
    pub fn cell_temperature(self) -> Celsius {
        match self {
            Placement::WindowDesk => Celsius::new(30.0),
            Placement::InteriorDesk => Celsius::new(25.0),
            Placement::Outdoor => Celsius::new(35.0),
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::WindowDesk => "window desk",
            Placement::InteriorDesk => "interior desk",
            Placement::Outdoor => "outdoor",
        }
    }
}

/// Relative population weights of the three placements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementMix {
    weights: [f64; 3],
}

impl PlacementMix {
    /// Creates a mix with the given non-negative weights (any scale;
    /// they are normalised internally).
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative weights and an all-zero mix.
    pub fn new(window: f64, interior: f64, outdoor: f64) -> Result<Self, FleetError> {
        let weights = [window, interior, outdoor];
        for &w in &weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(FleetError::InvalidSpec {
                    name: "placement_weight",
                    value: w,
                });
            }
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(FleetError::InvalidSpec {
                name: "placement_weight_sum",
                value: sum,
            });
        }
        Ok(Self { weights })
    }

    /// The deployment the paper targets: mostly interior desks, a
    /// quarter by the window, a modest outdoor/mobile contingent.
    pub fn mixed_indoor_outdoor() -> Self {
        Self {
            weights: [0.25, 0.60, 0.15],
        }
    }

    /// The normalised weight of a placement.
    pub fn weight(&self, p: Placement) -> f64 {
        self.weights[p.index()] / self.weights.iter().sum::<f64>()
    }

    /// Maps a uniform draw in `[0, 1)` to a placement by cumulative
    /// weight.
    pub fn pick(&self, u: f64) -> Placement {
        let sum: f64 = self.weights.iter().sum();
        let target = u.clamp(0.0, 1.0) * sum;
        let mut acc = 0.0;
        for p in Placement::ALL {
            acc += self.weights[p.index()];
            if target < acc {
                return p;
            }
        }
        Placement::Outdoor
    }
}

/// The declared manufacturing and deployment spread of a fleet batch,
/// mirroring the component budget of the single-build `tolerance_study`:
/// the divider sets the FOCV factor `k`, the astable's film capacitor
/// and resistors set the hold period and PULSE width, and the optical
/// terms (cell photocurrent binning, dust/shading, desk placement) land
/// on the illuminance each node sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// ± relative spread of the cell's optical gain (photocurrent
    /// binning); folded into the per-node illuminance gain so the whole
    /// fleet shares one memoized PV surface per `(model, temperature)`.
    pub pv_optical_pct: f64,
    /// ± relative spread of the FOCV factor `k` (divider resistors after
    /// trimming).
    pub divider_pct: f64,
    /// ± relative spread of the astable timing capacitor (film C); it
    /// scales hold period and PULSE width together.
    pub capacitor_pct: f64,
    /// ± relative spread of each astable timing resistor (independent
    /// for the charge and discharge paths).
    pub resistor_pct: f64,
    /// Maximum dust/shading derating; each node draws its derate
    /// uniformly from `[0, derate_max]`.
    pub derate_max: f64,
    /// Maximum magnitude of the placement illuminance offset, in lux.
    pub offset_lux: f64,
}

impl Tolerances {
    /// The production budget used throughout: ±5 % optical binning,
    /// ±2 % trimmed divider, ±10 % film capacitor, ±5 % resistors, up to
    /// 30 % dust/shading derating, up to 150 lx of placement offset.
    pub fn production_batch() -> Self {
        Self {
            pv_optical_pct: 0.05,
            divider_pct: 0.02,
            capacitor_pct: 0.10,
            resistor_pct: 0.05,
            derate_max: 0.30,
            offset_lux: 150.0,
        }
    }

    /// A zero-spread batch: every node is the golden prototype.
    pub fn none() -> Self {
        Self {
            pv_optical_pct: 0.0,
            divider_pct: 0.0,
            capacitor_pct: 0.0,
            resistor_pct: 0.0,
            derate_max: 0.0,
            offset_lux: 0.0,
        }
    }

    /// Validates the budget: every term finite and non-negative, the
    /// relative spreads below 50 % (beyond which a "tolerance" is a
    /// different part), the derating below 100 %.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), FleetError> {
        let relative = [
            ("pv_optical_pct", self.pv_optical_pct),
            ("divider_pct", self.divider_pct),
            ("capacitor_pct", self.capacitor_pct),
            ("resistor_pct", self.resistor_pct),
        ];
        for (name, v) in relative {
            if !(v.is_finite() && (0.0..0.5).contains(&v)) {
                return Err(FleetError::InvalidSpec { name, value: v });
            }
        }
        if !(self.derate_max.is_finite() && (0.0..1.0).contains(&self.derate_max)) {
            return Err(FleetError::InvalidSpec {
                name: "derate_max",
                value: self.derate_max,
            });
        }
        if !(self.offset_lux.is_finite() && self.offset_lux >= 0.0) {
            return Err(FleetError::InvalidSpec {
                name: "offset_lux",
                value: self.offset_lux,
            });
        }
        Ok(())
    }
}

/// A complete, deterministic description of a heterogeneous fleet: the
/// base node design, how many instances to stamp out, the seed that
/// fixes every per-node variation, and the shared scenario parameters.
///
/// The same spec always produces the same population and — through the
/// order-independent sharded merge in [`crate::FleetRunner`] — the same
/// [`crate::FleetReport`], bit for bit, at any worker count.
///
/// ```
/// use eh_fleet::{FleetSpec, Placement};
///
/// let spec = FleetSpec::mixed_indoor_outdoor(50, 2011)?;
/// let population = spec.population()?;
/// assert_eq!(population.len(), 50);
/// // Seeded: the same spec re-derives the identical population.
/// assert_eq!(population, FleetSpec::mixed_indoor_outdoor(50, 2011)?.population()?);
/// // Heterogeneous: hold periods spread around the paper's 69 s.
/// let periods: Vec<f64> = population.iter().map(|n| n.sample_period.value()).collect();
/// assert!(periods.iter().any(|&p| (p - 69.0).abs() > 0.5));
/// // Mixed placements appear.
/// assert!(population.iter().any(|n| n.placement == Placement::Outdoor));
/// # Ok::<(), eh_fleet::FleetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Display name of the deployment.
    pub name: String,
    /// Number of nodes to instantiate.
    pub nodes: u32,
    /// Seed fixing the entire population and the shared day traces.
    pub seed: u64,
    /// The base PV module (temperature is overridden per placement).
    pub cell: PvCell,
    /// Relative placement weights.
    pub placements: PlacementMix,
    /// Declared per-node spread.
    pub tolerances: Tolerances,
    /// Energy store stamped out fresh for every node.
    pub store: StoreSpec,
    /// Optional duty-cycled node load (cloned per node).
    pub load: Option<DutyCycledLoad>,
    /// Simulation step.
    pub dt: Seconds,
    /// Decimation factor applied to the 1 Hz day profiles before
    /// simulation (60 puts the trace on a 1-minute grid).
    pub trace_decimate: usize,
    /// Whether node simulations answer PV queries from the shared
    /// memoized surface.
    pub pv_cache: bool,
    /// Whether every node simulation collects deterministic metrics,
    /// folded into the aggregate [`crate::FleetReport`]'s store.
    pub obs: bool,
}

impl FleetSpec {
    /// The reference deployment: `nodes` AM-1815 nodes in the
    /// [`PlacementMix::mixed_indoor_outdoor`] mix with the
    /// [`Tolerances::production_batch`] spread, a 0.22 F supercapacitor
    /// deployed at 4 V, the typical sensor-node load, a 1-minute trace
    /// grid and a 60 s step, PV cache on.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors the
    /// fallible constructors it composes.
    pub fn mixed_indoor_outdoor(nodes: u32, seed: u64) -> Result<Self, FleetError> {
        Ok(Self {
            name: format!("mixed indoor/outdoor x{nodes}"),
            nodes,
            seed,
            cell: presets::sanyo_am1815(),
            placements: PlacementMix::mixed_indoor_outdoor(),
            tolerances: Tolerances::production_batch(),
            store: StoreSpec::supercapacitor_022f_at(4.0),
            load: Some(DutyCycledLoad::typical_sensor_node()?),
            dt: Seconds::new(60.0),
            trace_decimate: 60,
            pv_cache: true,
            obs: false,
        })
    }

    /// Validates the spec's scalar parameters (the tolerance budget, the
    /// node count, the step and decimation).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.nodes == 0 {
            return Err(FleetError::InvalidSpec {
                name: "nodes",
                value: 0.0,
            });
        }
        if !(self.dt.value().is_finite() && self.dt.value() > 0.0) {
            return Err(FleetError::InvalidSpec {
                name: "dt",
                value: self.dt.value(),
            });
        }
        if self.trace_decimate == 0 {
            return Err(FleetError::InvalidSpec {
                name: "trace_decimate",
                value: 0.0,
            });
        }
        self.tolerances.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_mix_picks_by_cumulative_weight() {
        let mix = PlacementMix::new(1.0, 2.0, 1.0).unwrap();
        assert_eq!(mix.pick(0.0), Placement::WindowDesk);
        assert_eq!(mix.pick(0.26), Placement::InteriorDesk);
        assert_eq!(mix.pick(0.74), Placement::InteriorDesk);
        assert_eq!(mix.pick(0.80), Placement::Outdoor);
        assert_eq!(mix.pick(0.999), Placement::Outdoor);
        assert!((mix.weight(Placement::InteriorDesk) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn placement_mix_validation() {
        assert!(PlacementMix::new(-1.0, 1.0, 1.0).is_err());
        assert!(PlacementMix::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(PlacementMix::new(0.0, 0.0, 0.0).is_err());
        assert!(PlacementMix::new(0.0, 1.0, 0.0).is_ok());
    }

    #[test]
    fn tolerance_validation() {
        assert!(Tolerances::production_batch().validate().is_ok());
        assert!(Tolerances::none().validate().is_ok());
        let mut t = Tolerances::production_batch();
        t.divider_pct = 0.5;
        assert!(t.validate().is_err());
        t = Tolerances::production_batch();
        t.derate_max = 1.0;
        assert!(t.validate().is_err());
        t = Tolerances::production_batch();
        t.offset_lux = f64::NAN;
        assert!(t.validate().is_err());
    }

    #[test]
    fn spec_validation() {
        let mut spec = FleetSpec::mixed_indoor_outdoor(10, 1).unwrap();
        assert!(spec.validate().is_ok());
        spec.nodes = 0;
        assert!(spec.validate().is_err());
        let mut spec = FleetSpec::mixed_indoor_outdoor(10, 1).unwrap();
        spec.trace_decimate = 0;
        assert!(spec.validate().is_err());
        let mut spec = FleetSpec::mixed_indoor_outdoor(10, 1).unwrap();
        spec.dt = Seconds::ZERO;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn placements_have_distinct_temperatures() {
        let mut temps: Vec<f64> = Placement::ALL
            .iter()
            .map(|p| {
                let k: eh_units::Kelvin = p.cell_temperature().into();
                k.value()
            })
            .collect();
        temps.sort_by(f64::total_cmp);
        temps.dedup();
        assert_eq!(temps.len(), 3, "placement temperatures must be distinct");
    }
}
