//! Deterministic fleet-scale simulation of heterogeneous sensor-node
//! populations.
//!
//! The paper validates one prototype; a deployment ships hundreds of
//! units that differ in trimmed divider, astable timing, cell binning,
//! dust, and desk placement. This crate stamps a whole population out of
//! one [`FleetSpec`] — base design plus a seeded, bounded spread — and
//! answers the deployment questions: the net-energy percentiles across
//! the fleet, how many nodes brown out or can never cold-start, what
//! the tracker overhead distribution looks like, and which node is the
//! worst and why.
//!
//! Pipeline (see `DESIGN.md` for the full diagram):
//!
//! ```text
//! FleetSpec ─▶ population (seeded, 9 draws/node) ─▶ shards ─▶ merge
//!      shared: base day trace per placement + warmed PV surface
//! ```
//!
//! Determinism is end-to-end: the population is a pure function of
//! `(spec, seed)`, every node owns its jitter, and shard reports merge
//! in shard index order — so a [`FleetReport`] is **bit-for-bit
//! identical** whether it was computed by 1 worker or 16.
//!
//! # Example
//!
//! ```
//! use eh_fleet::{FleetRunner, FleetSpec};
//! use eh_units::Seconds;
//!
//! let mut spec = FleetSpec::mixed_indoor_outdoor(12, 7)?;
//! spec.trace_decimate = 600; // 10-minute light grid keeps the doctest quick
//! spec.dt = Seconds::new(600.0);
//! let report = FleetRunner::new(2).run(&spec)?;
//! assert_eq!(report.nodes(), 12);
//! let p = report.net_energy_percentiles().expect("non-empty fleet");
//! assert!(p.p5 <= p.p50 && p.p50 <= p.p95);
//! // Bit-identical on a single worker.
//! assert_eq!(report, FleetRunner::new(1).run(&spec)?);
//! # Ok::<(), eh_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod compare;
mod context;
mod error;
mod pool;
mod population;
mod report;
mod run;
mod spec;
mod vectorized;

pub use compare::{compare_trackers_over_fleet, compare_trackers_over_fleet_with, TrackerKind};
pub use context::FleetContext;
pub use error::FleetError;
pub use pool::SurfacePool;
pub use population::NodeSpec;
pub use report::{FleetReport, NodeOutcome, Percentiles};
pub use run::{run_fleet_batched, Engine, FleetRunner};
pub use spec::{FleetSpec, Placement, PlacementMix, Tolerances};
