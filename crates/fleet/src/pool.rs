//! The shared PV-surface pool.
//!
//! Per-node optical tolerance is folded into each node's illuminance
//! perturbation, so every node of a placement shares the *same*
//! electrical cell at that placement's temperature. The pool warms one
//! memoized [`eh_pv::CachedPvSurface`] per `(model, temperature)` up
//! front; the cells it hands to simulation jobs are clones, and clones
//! share the built table — a 10 000-node fleet pays for at most three
//! table builds, not 10 000.

use eh_pv::PvCell;

use crate::error::FleetError;
use crate::spec::Placement;

/// One warmed cell per placement in use, indexed by
/// [`Placement::index`].
#[derive(Debug)]
pub struct SurfacePool {
    cells: [Option<PvCell>; 3],
}

impl SurfacePool {
    /// Builds the pool for the placements that actually occur in a
    /// population, re-binding `base` to each placement's temperature.
    /// With `cache` set, each cell's surface is built eagerly here so
    /// worker threads only ever do lookups.
    ///
    /// # Errors
    ///
    /// Propagates surface-construction failures.
    pub fn warm(
        base: &PvCell,
        placements: impl IntoIterator<Item = Placement>,
        cache: bool,
    ) -> Result<Self, FleetError> {
        let mut cells: [Option<PvCell>; 3] = [None, None, None];
        for p in placements {
            if cells[p.index()].is_none() {
                let cell = base.clone().with_temperature(p.cell_temperature());
                cells[p.index()] = Some(if cache { cell.warmed()? } else { cell });
            }
        }
        Ok(Self { cells })
    }

    /// The pool's cell for a placement, if that placement was warmed.
    pub fn cell(&self, p: Placement) -> Option<&PvCell> {
        self.cells[p.index()].as_ref()
    }

    /// How many distinct `(model, temperature)` cells the pool holds.
    pub fn len(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::{presets, CachedPvSurface};

    #[test]
    fn clones_share_the_warmed_surface() {
        let pool = SurfacePool::warm(
            &presets::sanyo_am1815(),
            [Placement::InteriorDesk, Placement::InteriorDesk],
            true,
        )
        .unwrap();
        assert_eq!(pool.len(), 1);
        let cell = pool.cell(Placement::InteriorDesk).unwrap();
        let a = cell.cached().unwrap() as *const CachedPvSurface;
        let b = cell.clone().cached().unwrap() as *const CachedPvSurface;
        assert_eq!(a, b, "job clone rebuilt the table");
        assert!(pool.cell(Placement::Outdoor).is_none());
    }

    #[test]
    fn placements_get_distinct_temperature_surfaces() {
        let pool = SurfacePool::warm(&presets::sanyo_am1815(), Placement::ALL, true).unwrap();
        assert_eq!(pool.len(), 3);
        let window = pool.cell(Placement::WindowDesk).unwrap();
        let interior = pool.cell(Placement::InteriorDesk).unwrap();
        assert_ne!(window.temperature(), interior.temperature());
        let a = window.cached().unwrap() as *const CachedPvSurface;
        let b = interior.cached().unwrap() as *const CachedPvSurface;
        assert_ne!(a, b, "different temperatures must not share one table");
    }

    #[test]
    fn uncached_pool_builds_no_surfaces() {
        let pool =
            SurfacePool::warm(&presets::sanyo_am1815(), [Placement::Outdoor], false).unwrap();
        assert!(!pool.is_empty());
        assert!(!pool.cell(Placement::Outdoor).unwrap().cache_enabled());
    }
}
