//! The shared PV-surface pool.
//!
//! Per-node optical tolerance is folded into each node's illuminance
//! perturbation, so every node of a placement shares the *same*
//! electrical cell at that placement's temperature. The pool warms one
//! memoized [`eh_pv::CachedPvSurface`] per `(model, temperature)` up
//! front; the cells it hands to simulation jobs are clones, and clones
//! share the built table — a 10 000-node fleet pays for at most three
//! table builds, not 10 000.
//!
//! The pool is **capacity-bounded**: inserting past the bound evicts
//! the oldest warmed cell and counts the eviction, so a long-running
//! service that warms pools for a hostile stream of distinct specs can
//! neither grow one without bound nor lose track of how much table
//! churn the stream is causing. Evictions and occupancy are exported
//! into an [`eh_obs::Recorder`] via [`SurfacePool::record_into`].

use eh_obs::Recorder;
use eh_pv::PvCell;

use crate::error::FleetError;
use crate::spec::Placement;

/// One warmed cell per placement in use, indexed by
/// [`Placement::index`], bounded by a capacity with oldest-first
/// eviction.
#[derive(Debug, Clone)]
pub struct SurfacePool {
    /// Warmed cells in insertion order, oldest first.
    entries: Vec<(Placement, PvCell)>,
    capacity: usize,
    evictions: u64,
}

impl SurfacePool {
    /// Builds the pool for the placements that actually occur in a
    /// population, re-binding `base` to each placement's temperature.
    /// With `cache` set, each cell's surface is built eagerly here so
    /// worker threads only ever do lookups. The capacity covers every
    /// placement, so this constructor never evicts.
    ///
    /// # Errors
    ///
    /// Propagates surface-construction failures.
    pub fn warm(
        base: &PvCell,
        placements: impl IntoIterator<Item = Placement>,
        cache: bool,
    ) -> Result<Self, FleetError> {
        Self::warm_bounded(base, placements, cache, Placement::ALL.len())
    }

    /// [`SurfacePool::warm`] with an explicit capacity bound (clamped
    /// to at least 1). Warming more distinct placements than the bound
    /// evicts the oldest cell and counts it in
    /// [`SurfacePool::evictions`].
    ///
    /// # Errors
    ///
    /// Propagates surface-construction failures.
    pub fn warm_bounded(
        base: &PvCell,
        placements: impl IntoIterator<Item = Placement>,
        cache: bool,
        capacity: usize,
    ) -> Result<Self, FleetError> {
        let mut pool = Self {
            entries: Vec::new(),
            capacity: capacity.max(1),
            evictions: 0,
        };
        for p in placements {
            pool.warm_one(base, p, cache)?;
        }
        Ok(pool)
    }

    /// Warms (or re-warms after an eviction) the cell of one placement,
    /// evicting the oldest entry when the pool is at capacity. A
    /// placement that is already warmed is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates surface-construction failures.
    pub fn warm_one(&mut self, base: &PvCell, p: Placement, cache: bool) -> Result<(), FleetError> {
        if self.cell(p).is_some() {
            return Ok(());
        }
        let cell = base.clone().with_temperature(p.cell_temperature());
        let cell = if cache { cell.warmed()? } else { cell };
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((p, cell));
        Ok(())
    }

    /// The pool's cell for a placement, if that placement is currently
    /// warmed (it may have been evicted by a later insert).
    pub fn cell(&self, p: Placement) -> Option<&PvCell> {
        self.entries
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, cell)| cell)
    }

    /// How many distinct `(model, temperature)` cells the pool holds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The maximum number of warmed cells the pool will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many warmed cells were evicted to respect the capacity
    /// bound over the pool's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Exports the pool's accounting into a metric store: the
    /// `fleet.surface_pool.evictions` counter and the
    /// `fleet.surface_pool.entries` / `fleet.surface_pool.capacity`
    /// gauges. Call once per warmed pool (counters add).
    pub fn record_into<R: Recorder + ?Sized>(&self, r: &mut R) {
        r.add_counter("fleet.surface_pool.warmed", self.entries.len() as u64);
        r.add_counter("fleet.surface_pool.evictions", self.evictions);
        r.set_gauge("fleet.surface_pool.entries", self.entries.len() as f64);
        r.set_gauge("fleet.surface_pool.capacity", self.capacity as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::{presets, CachedPvSurface};

    #[test]
    fn clones_share_the_warmed_surface() {
        let pool = SurfacePool::warm(
            &presets::sanyo_am1815(),
            [Placement::InteriorDesk, Placement::InteriorDesk],
            true,
        )
        .unwrap();
        assert_eq!(pool.len(), 1);
        let cell = pool.cell(Placement::InteriorDesk).unwrap();
        let a = cell.cached().unwrap() as *const CachedPvSurface;
        let b = cell.clone().cached().unwrap() as *const CachedPvSurface;
        assert_eq!(a, b, "job clone rebuilt the table");
        assert!(pool.cell(Placement::Outdoor).is_none());
    }

    #[test]
    fn placements_get_distinct_temperature_surfaces() {
        let pool = SurfacePool::warm(&presets::sanyo_am1815(), Placement::ALL, true).unwrap();
        assert_eq!(pool.len(), 3);
        let window = pool.cell(Placement::WindowDesk).unwrap();
        let interior = pool.cell(Placement::InteriorDesk).unwrap();
        assert_ne!(window.temperature(), interior.temperature());
        let a = window.cached().unwrap() as *const CachedPvSurface;
        let b = interior.cached().unwrap() as *const CachedPvSurface;
        assert_ne!(a, b, "different temperatures must not share one table");
    }

    #[test]
    fn uncached_pool_builds_no_surfaces() {
        let pool =
            SurfacePool::warm(&presets::sanyo_am1815(), [Placement::Outdoor], false).unwrap();
        assert!(!pool.is_empty());
        assert!(!pool.cell(Placement::Outdoor).unwrap().cache_enabled());
    }

    /// Regression (PR 8): the pool used to have no size accounting at
    /// all — a capacity bound must evict oldest-first and count it.
    #[test]
    fn bounded_pool_evicts_oldest_and_counts() {
        let base = presets::sanyo_am1815();
        let mut pool = SurfacePool::warm_bounded(
            &base,
            [Placement::WindowDesk, Placement::InteriorDesk],
            false,
            2,
        )
        .unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 0);
        // A third distinct placement exceeds the bound: the oldest
        // (window desk) is evicted and the eviction is counted.
        pool.warm_one(&base, Placement::Outdoor, false).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.evictions(), 1);
        assert!(pool.cell(Placement::WindowDesk).is_none());
        assert!(pool.cell(Placement::InteriorDesk).is_some());
        assert!(pool.cell(Placement::Outdoor).is_some());
        // Re-warming an already-warm placement is a no-op.
        pool.warm_one(&base, Placement::Outdoor, false).unwrap();
        assert_eq!(pool.evictions(), 1);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let pool =
            SurfacePool::warm_bounded(&presets::sanyo_am1815(), Placement::ALL, false, 0).unwrap();
        assert_eq!(pool.capacity(), 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.evictions(), 2);
    }

    #[test]
    fn accounting_exports_into_a_recorder() {
        use eh_obs::Metrics;
        let pool =
            SurfacePool::warm_bounded(&presets::sanyo_am1815(), Placement::ALL, false, 2).unwrap();
        let mut m = Metrics::new();
        pool.record_into(&mut m);
        assert_eq!(m.counter("fleet.surface_pool.evictions"), 1);
        assert_eq!(m.counter("fleet.surface_pool.warmed"), 2);
        assert_eq!(m.gauge("fleet.surface_pool.entries"), Some(2.0));
        assert_eq!(m.gauge("fleet.surface_pool.capacity"), Some(2.0));
    }
}
