//! Order-independent fleet aggregation.
//!
//! A [`FleetReport`] is built by merging single-node reports. The merge
//! is a plain concatenation in input order — [`eh_sim::SweepRunner::run_merged`]
//! guarantees shard reports are folded in shard index order — so the
//! aggregate is bit-for-bit identical at any worker count, and every
//! derived statistic (percentiles, counts, the worst-node drill-down)
//! inherits that determinism.

use std::fmt;

use eh_node::NodeReport;
use eh_obs::Metrics;
use eh_sim::Mergeable;
use eh_units::Joules;

use crate::spec::Placement;

/// One node's outcome inside a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutcome {
    /// The node's fleet index.
    pub id: u32,
    /// Where the node was deployed.
    pub placement: Placement,
    /// Whether the cold-start supervisor could ever bring this node up
    /// from a fully discharged state under its own peak illuminance
    /// (analytic feasibility check against the paper's §III circuit).
    pub cold_start_ok: bool,
    /// The full closed-loop run report.
    pub report: NodeReport,
}

impl NodeOutcome {
    /// `gross − overhead − compute` for this node.
    pub fn net_energy(&self) -> Joules {
        self.report.net_energy()
    }

    /// Whether the node failed to serve some of its load demand (ran
    /// its store dry at least once).
    pub fn browned_out(&self) -> bool {
        self.report.load_demand.value() > 0.0
            && self.report.load_served.value() < self.report.load_demand.value()
    }
}

/// The p5/p50/p95 of one per-node quantity, by the nearest-rank method
/// over `total_cmp`-sorted values (deterministic for any input order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Percentiles {
    /// Nearest-rank p5/p50/p95 of a value set; `None` when empty.
    /// Public so layers that aggregate non-energy values (the campaign
    /// runner's survival days) reuse the exact ranking the fleet report
    /// uses.
    pub fn of(mut values: Vec<f64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let n = values.len();
            let k = ((q * n as f64).ceil() as usize).clamp(1, n);
            values[k - 1]
        };
        Some(Self {
            p5: rank(0.05),
            p50: rank(0.50),
            p95: rank(0.95),
        })
    }
}

/// The merged outcome of a fleet run: every node's report in fleet
/// order, plus the derived population statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The fleet's display name.
    pub name: String,
    /// The tracker the fleet ran.
    pub tracker: String,
    /// Per-node outcomes, in fleet (input) order.
    pub outcomes: Vec<NodeOutcome>,
    /// The fleet-wide metric store: every node's [`Metrics`] folded in
    /// fleet order, when [`crate::FleetSpec::obs`] was enabled. Hoisted
    /// out of the per-node reports at [`FleetReport::single`] so the
    /// outcome vector stays lean.
    pub metrics: Option<Metrics>,
}

impl FleetReport {
    /// A single-node report — the unit [`Mergeable`] folds over.
    ///
    /// Moves the node's metric store (if any) out of the per-node
    /// report and into the fleet-level aggregate.
    pub fn single(name: &str, mut outcome: NodeOutcome) -> Self {
        let metrics = outcome.report.metrics.take();
        Self {
            name: name.to_owned(),
            tracker: outcome.report.tracker.clone(),
            outcomes: vec![outcome],
            metrics,
        }
    }

    /// Number of nodes aggregated.
    pub fn nodes(&self) -> usize {
        self.outcomes.len()
    }

    /// Stamps the fleet-scope counters (`fleet.nodes`) into the merged
    /// metric store, when one exists. [`crate::FleetRunner`] applies
    /// this exactly once after the shard merge; callers that fold
    /// shards themselves (via [`crate::FleetContext::simulate_shard`])
    /// must apply it to their final merged report to stay bit-identical
    /// with the runner's output.
    #[must_use]
    pub fn with_fleet_counters(mut self) -> Self {
        if let Some(m) = self.metrics.as_mut() {
            use eh_obs::Recorder as _;
            m.add_counter("fleet.nodes", self.outcomes.len() as u64);
        }
        self
    }

    /// Net-energy percentiles across the fleet, in joules.
    pub fn net_energy_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .map(|o| o.net_energy().value())
                .collect(),
        )
    }

    /// Gross-harvest percentiles across the fleet, in joules.
    pub fn gross_energy_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .map(|o| o.report.gross_energy.value())
                .collect(),
        )
    }

    /// Metrology (tracker-overhead) percentiles across the fleet, in
    /// joules: the energy each node's measurement circuit burned.
    pub fn overhead_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .map(|o| o.report.overhead_energy.value())
                .collect(),
        )
    }

    /// Compute-energy percentiles across the fleet, in joules: what
    /// each node's MPPT arithmetic cost on the MCU. Zero for analog
    /// trackers.
    pub fn compute_energy_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .map(|o| o.report.compute_energy.value())
                .collect(),
        )
    }

    /// How many nodes failed to serve some load demand.
    pub fn brown_out_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.browned_out()).count()
    }

    /// How many nodes can never cold-start under their own light.
    pub fn cold_start_failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.cold_start_ok).count()
    }

    /// How many nodes ended the run net-negative.
    pub fn net_negative_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.report.is_net_positive())
            .count()
    }

    /// Nodes deployed at the given placement.
    pub fn placement_count(&self, p: Placement) -> usize {
        self.outcomes.iter().filter(|o| o.placement == p).count()
    }

    /// The node with the lowest net energy (first such node in fleet
    /// order on exact ties) — the drill-down target.
    pub fn worst_node(&self) -> Option<&NodeOutcome> {
        self.outcomes.iter().min_by(|a, b| {
            a.net_energy()
                .value()
                .total_cmp(&b.net_energy().value())
                .then(a.id.cmp(&b.id))
        })
    }
}

impl Mergeable for FleetReport {
    fn merge(&mut self, other: Self) {
        self.outcomes.extend(other.outcomes);
        match (self.metrics.as_mut(), other.metrics) {
            (Some(mine), Some(theirs)) => mine.merge_from(theirs),
            (None, Some(theirs)) => self.metrics = Some(theirs),
            _ => {}
        }
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet `{}` — {} nodes, tracker: {}",
            self.name,
            self.nodes(),
            self.tracker
        )?;
        if let Some(p) = self.gross_energy_percentiles() {
            writeln!(
                f,
                "  gross        p5 {:>10.4} J   p50 {:>10.4} J   p95 {:>10.4} J",
                p.p5, p.p50, p.p95
            )?;
        }
        if let Some(p) = self.overhead_percentiles() {
            writeln!(
                f,
                "  metrology    p5 {:>10.4} J   p50 {:>10.4} J   p95 {:>10.4} J",
                p.p5, p.p50, p.p95
            )?;
        }
        if let Some(p) = self.compute_energy_percentiles() {
            writeln!(
                f,
                "  compute      p5 {:>10.4} J   p50 {:>10.4} J   p95 {:>10.4} J",
                p.p5, p.p50, p.p95
            )?;
        }
        if let Some(p) = self.net_energy_percentiles() {
            writeln!(
                f,
                "  net energy   p5 {:>10.4} J   p50 {:>10.4} J   p95 {:>10.4} J",
                p.p5, p.p50, p.p95
            )?;
        }
        writeln!(
            f,
            "  brown-outs {}   cold-start failures {}   net-negative {}",
            self.brown_out_count(),
            self.cold_start_failures(),
            self.net_negative_count()
        )?;
        if let Some(w) = self.worst_node() {
            writeln!(
                f,
                "  worst node #{} ({}): net {:.4} J, uptime {:.3}, {} measurements",
                w.id,
                w.placement.label(),
                w.net_energy().value(),
                w.report.uptime().value(),
                w.report.measurements
            )?;
        }
        if let Some(m) = self.metrics.as_ref() {
            let ledger = m.ledger();
            if !ledger.is_empty() {
                writeln!(
                    f,
                    "  energy ledger: astable {:.4} J, sample/hold {:.4} J, switching {:.4} J, load {:.4} J, compute {:.4} J",
                    ledger.energy(eh_obs::EnergyBucket::Astable).value(),
                    ledger.energy(eh_obs::EnergyBucket::SampleHold).value(),
                    ledger.energy(eh_obs::EnergyBucket::ConverterSwitching).value(),
                    ledger.energy(eh_obs::EnergyBucket::Load).value(),
                    ledger.energy(eh_obs::EnergyBucket::Compute).value(),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Seconds;

    fn outcome(id: u32, net: f64, served: f64) -> NodeOutcome {
        NodeOutcome {
            id,
            placement: Placement::InteriorDesk,
            cold_start_ok: id.is_multiple_of(2),
            report: NodeReport {
                tracker: "t".into(),
                duration: Seconds::from_hours(24.0),
                gross_energy: Joules::new(net.max(0.0)),
                overhead_energy: Joules::new((net.max(0.0)) - net),
                load_demand: Joules::new(1.0),
                load_served: Joules::new(served),
                final_store_energy: Joules::ZERO,
                loss_energy: Joules::ZERO,
                compute_energy: Joules::ZERO,
                measurements: 10,
                decisions: 0,
                metrics: None,
            },
        }
    }

    fn report(ids: &[u32]) -> FleetReport {
        let mut it = ids.iter();
        let first = *it.next().unwrap();
        let mut r = FleetReport::single("test", outcome(first, first as f64, 1.0));
        for &id in it {
            r.merge(FleetReport::single("test", outcome(id, id as f64, 1.0)));
        }
        r
    }

    #[test]
    fn merge_concatenates_in_call_order() {
        let r = report(&[0, 1, 2, 3]);
        let ids: Vec<u32> = r.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(r.nodes(), 4);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(values).unwrap();
        assert_eq!(p.p5, 5.0);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert!(Percentiles::of(Vec::new()).is_none());
        let single = Percentiles::of(vec![7.0]).unwrap();
        assert_eq!((single.p5, single.p50, single.p95), (7.0, 7.0, 7.0));
    }

    #[test]
    fn percentiles_are_input_order_independent() {
        let a = Percentiles::of(vec![3.0, 1.0, 2.0]).unwrap();
        let b = Percentiles::of(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worst_node_breaks_ties_by_id() {
        let mut r = FleetReport::single("test", outcome(5, 1.0, 1.0));
        r.merge(FleetReport::single("test", outcome(2, 1.0, 1.0)));
        r.merge(FleetReport::single("test", outcome(9, 4.0, 1.0)));
        assert_eq!(r.worst_node().unwrap().id, 2);
    }

    #[test]
    fn counts() {
        let mut r = report(&[0, 1, 2, 3]);
        r.merge(FleetReport::single("test", outcome(4, 4.0, 0.5)));
        assert_eq!(r.brown_out_count(), 1);
        assert_eq!(r.cold_start_failures(), 2, "odd ids fail cold start");
        assert_eq!(r.net_negative_count(), 1, "node 0 has net == 0");
        assert_eq!(r.placement_count(Placement::InteriorDesk), 5);
        assert_eq!(r.placement_count(Placement::Outdoor), 0);
    }

    #[test]
    fn display_renders_the_drill_down() {
        let s = report(&[0, 1, 2]).to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("worst node #0"));
    }

    #[test]
    fn single_hoists_metrics_and_merge_folds_them() {
        use eh_obs::Recorder as _;

        let with_metrics = |id: u32, count: u64| {
            let mut o = outcome(id, 1.0, 1.0);
            let mut m = Metrics::default();
            m.add_counter("node.measurements", count);
            o.report.metrics = Some(m);
            o
        };

        let mut r = FleetReport::single("test", with_metrics(0, 3));
        assert!(
            r.outcomes[0].report.metrics.is_none(),
            "single() must move the store out of the per-node report"
        );
        r.merge(FleetReport::single("test", with_metrics(1, 4)));
        r.merge(FleetReport::single("test", outcome(2, 1.0, 1.0)));
        let m = r.metrics.as_ref().expect("fleet store present");
        assert_eq!(m.counter("node.measurements"), 7);
        assert_eq!(r.nodes(), 3);

        // A metrics-less left side adopts the right side's store.
        let mut bare = FleetReport::single("test", outcome(3, 1.0, 1.0));
        bare.merge(FleetReport::single("test", with_metrics(4, 5)));
        assert_eq!(
            bare.metrics.as_ref().unwrap().counter("node.measurements"),
            5
        );
    }
}
