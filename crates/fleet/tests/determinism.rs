//! The fleet determinism contract: one spec, one result — bit for bit —
//! regardless of how the work was parallelised.

use eh_fleet::{FleetRunner, FleetSpec, TrackerKind};
use eh_units::Seconds;

/// A mixed fleet on a coarse grid: big enough that shards actually
/// interleave across workers (200 nodes over 32-node shards), coarse
/// enough to keep the 4-runner comparison fast in a debug test run.
fn spec() -> FleetSpec {
    let mut spec = FleetSpec::mixed_indoor_outdoor(200, 2011).unwrap();
    spec.trace_decimate = 600;
    spec.dt = Seconds::new(600.0);
    spec
}

#[test]
fn report_is_bit_identical_across_worker_counts() {
    let spec = spec();
    let reference = FleetRunner::new(1).run(&spec).unwrap();
    assert_eq!(reference.nodes(), 200);
    for workers in [2, 4, 16] {
        let report = FleetRunner::new(workers).run(&spec).unwrap();
        // PartialEq compares every f64 of every node report: this is
        // bit-identity, not tolerance.
        assert_eq!(report, reference, "{workers} workers diverged");
    }
}

#[test]
fn report_is_bit_identical_across_shard_sizes() {
    let spec = spec();
    let reference = FleetRunner::new(4).with_shard_size(1).run(&spec).unwrap();
    for shard in [7, 32, 1000] {
        let report = FleetRunner::new(4)
            .with_shard_size(shard)
            .run(&spec)
            .unwrap();
        assert_eq!(report, reference, "shard size {shard} diverged");
    }
}

#[test]
fn derived_statistics_inherit_the_determinism() {
    let spec = spec();
    let a = FleetRunner::new(1).run(&spec).unwrap();
    let b = FleetRunner::new(16).run(&spec).unwrap();
    assert_eq!(a.net_energy_percentiles(), b.net_energy_percentiles());
    assert_eq!(a.overhead_percentiles(), b.overhead_percentiles());
    assert_eq!(a.brown_out_count(), b.brown_out_count());
    assert_eq!(a.cold_start_failures(), b.cold_start_failures());
    assert_eq!(a.worst_node().map(|w| w.id), b.worst_node().map(|w| w.id));
}

#[test]
fn baseline_replay_is_deterministic_too() {
    // The comparison path shares the runner machinery; spot-check one
    // baseline kind rather than all eight.
    let mut spec = spec();
    spec.nodes = 40;
    let a = FleetRunner::new(1)
        .run_tracker(&spec, TrackerKind::FixedVoltage)
        .unwrap();
    let b = FleetRunner::new(4)
        .run_tracker(&spec, TrackerKind::FixedVoltage)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_fleets() {
    let mut a_spec = spec();
    a_spec.nodes = 40;
    let mut b_spec = a_spec.clone();
    b_spec.seed = a_spec.seed + 1;
    let a = FleetRunner::new(2).run(&a_spec).unwrap();
    let b = FleetRunner::new(2).run(&b_spec).unwrap();
    assert_ne!(a, b, "the seed must actually steer the population");
}
