//! Property tests: every drawn node stays inside the spec's declared
//! tolerance budget, for any budget and any seed; merged fleet metrics
//! are invariant under the worker count and shard size.

use eh_core::baselines::FocvSampleHold;
use eh_core::MpptController;
use eh_fleet::{FleetRunner, FleetSpec, Placement, Tolerances};
use eh_units::Seconds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Divider, astable, optics, placement offset and phase all land
    /// inside the bounds the tolerance budget declares.
    #[test]
    fn jitter_stays_inside_declared_bounds(
        divider in 0.0..0.45f64,
        cap in 0.0..0.45f64,
        res in 0.0..0.45f64,
        optical in 0.0..0.45f64,
        derate in 0.0..0.95f64,
        offset in 0.0..500.0f64,
        seed in 0..u64::MAX,
    ) {
        let mut spec = FleetSpec::mixed_indoor_outdoor(60, seed).expect("valid base spec");
        spec.tolerances = Tolerances {
            pv_optical_pct: optical,
            divider_pct: divider,
            capacitor_pct: cap,
            resistor_pct: res,
            derate_max: derate,
            offset_lux: offset,
        };
        let proto = FocvSampleHold::paper_prototype().expect("prototype constants");
        let timing_lo = (1.0 - cap) * (1.0 - res);
        let timing_hi = (1.0 + cap) * (1.0 + res);
        for node in spec.population().expect("population builds") {
            let k_rel = node.k / proto.k();
            prop_assert!(
                (1.0 - divider..=1.0 + divider).contains(&k_rel),
                "node {}: k ratio {k_rel} outside ±{divider}", node.id
            );
            let period_rel = node.sample_period.value() / proto.sample_period().value();
            prop_assert!(
                (timing_lo..=timing_hi).contains(&period_rel),
                "node {}: period ratio {period_rel} outside [{timing_lo}, {timing_hi}]", node.id
            );
            let pulse_rel = node.pulse_width.value() / proto.pulse_width().value();
            prop_assert!(
                (timing_lo..=timing_hi).contains(&pulse_rel),
                "node {}: pulse ratio {pulse_rel} outside [{timing_lo}, {timing_hi}]", node.id
            );
            prop_assert!(node.phase_offset.value() >= 0.0);
            prop_assert!(
                node.phase_offset < node.sample_period,
                "node {}: phase {} >= period {}", node.id, node.phase_offset, node.sample_period
            );
            let gain = node.perturbation.gain();
            let gain_lo = (1.0 - optical) * (1.0 - derate);
            let gain_hi = 1.0 + optical;
            prop_assert!(
                (gain_lo..=gain_hi).contains(&gain),
                "node {}: gain {gain} outside [{gain_lo}, {gain_hi}]", node.id
            );
            let off = node.perturbation.offset_lux();
            prop_assert!(off.abs() <= offset + 1e-9, "node {}: offset {off}", node.id);
            match node.placement {
                Placement::WindowDesk => prop_assert!(off >= 0.0),
                Placement::InteriorDesk => prop_assert!(off <= 0.0),
                Placement::Outdoor => prop_assert!(off.abs() <= 0.2 * offset + 1e-9),
                // `Placement` is non_exhaustive; future variants only
                // need the global bound asserted above.
                _ => {}
            }
            // Every drawn node must build a valid tracker whose hold
            // period strictly exceeds its PULSE width.
            let tracker = node.tracker().expect("in-budget node builds a tracker");
            prop_assert!(tracker.pulse_width() < tracker.sample_period());
            prop_assert!(tracker.overhead_power().as_micro() < 30.0);
        }
    }

    /// The merged metric store of a multi-worker run equals the
    /// single-worker store bit for bit, for any worker count, shard
    /// size and seed — the eh-obs determinism contract at fleet scale.
    /// The shard size must match between the runs: it fixes the
    /// floating-point fold grouping, which is part of the result's
    /// identity (worker count is not).
    #[test]
    fn merged_metrics_are_worker_invariant(
        workers in 2..6usize,
        shard in 1..9usize,
        seed in 0..1024u64,
    ) {
        let mut spec = FleetSpec::mixed_indoor_outdoor(8, seed).expect("valid spec");
        spec.trace_decimate = 3600; // 1-hour grid: contract, not physics
        spec.dt = Seconds::new(3600.0);
        spec.obs = true;
        let reference = FleetRunner::new(1)
            .with_shard_size(shard)
            .run(&spec)
            .expect("single-worker run");
        let parallel = FleetRunner::new(workers)
            .with_shard_size(shard)
            .run(&spec)
            .expect("multi-worker run");
        prop_assert!(reference.metrics.is_some(), "obs run must carry metrics");
        prop_assert_eq!(reference.metrics, parallel.metrics);
    }

    /// The population is a pure function of the spec for any seed, and
    /// prefixes are stable under fleet growth.
    #[test]
    fn population_is_seed_stable(seed in 0..u64::MAX, extra in 1..64u32) {
        let base = FleetSpec::mixed_indoor_outdoor(32, seed).expect("valid spec");
        let small = base.population().expect("population builds");
        let mut grown = base.clone();
        grown.nodes += extra;
        let large = grown.population().expect("population builds");
        prop_assert_eq!(&small[..], &large[..32]);
    }
}
