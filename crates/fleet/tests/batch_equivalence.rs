//! Oracle-equivalence contract of the batch engine.
//!
//! The per-node engine is the reference semantics; the batch engine is
//! a performance refactor that must be **bit-identical**: same
//! [`FleetReport`] (outcomes in fleet order, and merged metrics at
//! equal shard size) across seeds, worker counts and shard sizes.
//! These tests are the contract — any divergence, down to the last ULP
//! of any energy total, is a bug in the batch engine.

use eh_fleet::{
    compare_trackers_over_fleet_with, Engine, FleetContext, FleetReport, FleetRunner, FleetSpec,
    TrackerKind,
};
use eh_units::Seconds;

/// A fast, fully heterogeneous spec: every placement, 10-minute light
/// grid, 10-minute step.
fn spec(nodes: u32, seed: u64) -> FleetSpec {
    let mut spec = FleetSpec::mixed_indoor_outdoor(nodes, seed).unwrap();
    spec.trace_decimate = 600;
    spec.dt = Seconds::new(600.0);
    spec
}

fn assert_reports_identical(reference: &FleetReport, candidate: &FleetReport, what: &str) {
    assert_eq!(
        reference.outcomes.len(),
        candidate.outcomes.len(),
        "{what}: node count diverged"
    );
    for (a, b) in reference.outcomes.iter().zip(&candidate.outcomes) {
        assert_eq!(a, b, "{what}: node {} diverged", a.id);
    }
    assert_eq!(reference, candidate, "{what}: fleet aggregate diverged");
}

#[test]
fn batch_matches_per_node_across_seeds_workers_and_shards() {
    for seed in [2011_u64, 7, 404] {
        let spec = spec(24, seed);
        let ctx = FleetContext::prepare(&spec).unwrap();
        let reference = FleetRunner::new(1).run_prepared(&ctx).unwrap();
        for workers in [1_usize, 2, 4] {
            for shard_size in [1_usize, 32, 257] {
                let runner = FleetRunner::new(workers).with_shard_size(shard_size);
                let batched = runner.run_batched_prepared(&ctx).unwrap();
                assert_reports_identical(
                    &reference,
                    &batched,
                    &format!("seed {seed}, {workers} workers, shard {shard_size}"),
                );
            }
        }
    }
}

#[test]
fn batch_obs_metrics_match_per_node_at_equal_shard_size() {
    let mut spec = spec(24, 2011);
    spec.obs = true;
    let ctx = FleetContext::prepare(&spec).unwrap();
    // The fleet-level metric fold groups per-shard partial sums, so the
    // merged floats are engine-comparable at equal shard size (the
    // outcomes themselves are shard-size-invariant either way).
    for shard_size in [1_usize, 8, 32] {
        let runner = FleetRunner::new(2).with_shard_size(shard_size);
        let per_node = runner.run_prepared(&ctx).unwrap();
        let batched = runner.run_batched_prepared(&ctx).unwrap();
        assert_reports_identical(
            &per_node,
            &batched,
            &format!("obs fleet, shard {shard_size}"),
        );
        assert!(per_node.metrics.is_some(), "obs run must carry metrics");
        assert_eq!(
            per_node.metrics, batched.metrics,
            "merged metrics diverged at shard size {shard_size}"
        );
    }
    // And the batch engine's merged metrics are worker-invariant.
    let one = FleetRunner::new(1).run_batched_prepared(&ctx).unwrap();
    let four = FleetRunner::new(4).run_batched_prepared(&ctx).unwrap();
    assert_eq!(one, four, "batch metrics depend on worker count");
}

#[test]
fn batch_compatibility_lane_covers_every_tracker_kind() {
    let spec = spec(8, 99);
    let ctx = FleetContext::prepare(&spec).unwrap();
    let runner = FleetRunner::new(2).with_shard_size(3);
    for &kind in &TrackerKind::ALL {
        let per_node = runner.run_tracker_prepared(&ctx, kind).unwrap();
        let batched = runner.run_tracker_batched_prepared(&ctx, kind).unwrap();
        assert_reports_identical(&per_node, &batched, kind.label());
    }
}

#[test]
fn adaptive_trackers_are_engine_invariant_across_seeds_workers_and_shards() {
    // The three adaptive trackers ride the batch compatibility lane;
    // this pins them to the same bit-identity contract the FOCV fast
    // lane honours, across the full seed × worker × shard matrix.
    let kinds = [
        TrackerKind::VariableHoldFocv,
        TrackerKind::AdaptiveKFocv,
        TrackerKind::GradientDescent,
    ];
    for seed in [2011_u64, 7, 404] {
        let spec = spec(12, seed);
        let ctx = FleetContext::prepare(&spec).unwrap();
        for &kind in &kinds {
            let reference = FleetRunner::new(1)
                .run_tracker_prepared(&ctx, kind)
                .unwrap();
            for workers in [1_usize, 2, 4] {
                for shard_size in [1_usize, 32, 257] {
                    let runner = FleetRunner::new(workers).with_shard_size(shard_size);
                    let batched = runner.run_tracker_batched_prepared(&ctx, kind).unwrap();
                    assert_reports_identical(
                        &reference,
                        &batched,
                        &format!(
                            "{}, seed {seed}, {workers} workers, shard {shard_size}",
                            kind.label()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn batch_population_path_is_prefix_stable() {
    // Growing the fleet appends nodes; the existing prefix re-simulates
    // to the exact same outcomes through the batch engine.
    let runner = FleetRunner::new(2);
    let small = runner.run_batched(&spec(12, 2011)).unwrap();
    let large = runner.run_batched(&spec(36, 2011)).unwrap();
    assert_eq!(small.outcomes.len(), 12);
    assert_eq!(
        small.outcomes.as_slice(),
        &large.outcomes[..12],
        "prefix outcomes diverged when the fleet grew"
    );
}

#[test]
fn engine_aware_comparison_matrix_is_engine_invariant() {
    let spec = spec(6, 5);
    let runner = FleetRunner::new(2);
    let per_node = compare_trackers_over_fleet_with(&spec, &runner, Engine::PerNode).unwrap();
    let batched = compare_trackers_over_fleet_with(&spec, &runner, Engine::Batch).unwrap();
    assert_eq!(per_node.len(), TrackerKind::ALL.len());
    for ((kind_a, report_a), (kind_b, report_b)) in per_node.iter().zip(&batched) {
        assert_eq!(kind_a, kind_b);
        assert_reports_identical(report_a, report_b, kind_a.label());
    }
}
