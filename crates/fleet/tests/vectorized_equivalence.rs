//! Bounded-divergence contract of the wide-lane vectorized engine.
//!
//! The vectorized engine is **not** bit-identical to the per-node
//! oracle — its strength reductions (cursored PV reads, energy-domain
//! supercap, prefix-sum load profile) reassociate a handful of float
//! operations. These tests pin the contract it holds instead
//! (`DESIGN.md` §14):
//!
//! 1. Pulse/measurement/decision counts and outcome classifications
//!    (brown-out, cold-start failure, net-negative) are **exactly**
//!    equal to the oracle's.
//! 2. Per-node energy totals agree to **rel 1e-9**.
//! 3. The engine is **bit-identical to itself** across seeds × worker
//!    counts {1, 2, 4} × shard sizes {1, 32, 257}.
//! 4. Everything without a wide lane (other trackers, `pv_cache:
//!    false`) delegates to the batch engine and stays bit-identical.

use eh_fleet::{
    compare_trackers_over_fleet_with, Engine, FleetContext, FleetReport, FleetRunner, FleetSpec,
    TrackerKind,
};
use eh_units::Seconds;

/// A fast, fully heterogeneous spec: every placement, 10-minute light
/// grid, 10-minute step — the `batch_equivalence` reference scenario.
fn spec(nodes: u32, seed: u64) -> FleetSpec {
    let mut spec = FleetSpec::mixed_indoor_outdoor(nodes, seed).unwrap();
    spec.trace_decimate = 600;
    spec.dt = Seconds::new(600.0);
    spec
}

/// Relative disagreement with an absolute floor well below any energy
/// this scenario moves (loads draw millijoules per cycle; traces run a
/// full day).
fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// The per-node divergence budget of the contract.
const NET_ENERGY_REL: f64 = 1e-9;

fn assert_contract(reference: &FleetReport, candidate: &FleetReport, what: &str) {
    assert_eq!(
        reference.outcomes.len(),
        candidate.outcomes.len(),
        "{what}: node count diverged"
    );
    for (a, b) in reference.outcomes.iter().zip(&candidate.outcomes) {
        assert_eq!(a.id, b.id, "{what}: fleet order diverged");
        assert_eq!(a.placement, b.placement, "{what}: node {} placement", a.id);
        // Exact clauses: counts and classifications.
        assert_eq!(
            a.cold_start_ok, b.cold_start_ok,
            "{what}: node {} cold-start classification",
            a.id
        );
        assert_eq!(
            a.report.measurements, b.report.measurements,
            "{what}: node {} measurement count",
            a.id
        );
        assert_eq!(
            a.report.decisions, b.report.decisions,
            "{what}: node {} decision count",
            a.id
        );
        assert_eq!(
            a.browned_out(),
            b.browned_out(),
            "{what}: node {} brown-out classification",
            a.id
        );
        assert_eq!(
            a.report.is_net_positive(),
            b.report.is_net_positive(),
            "{what}: node {} net-positive classification",
            a.id
        );
        assert_eq!(a.report.tracker, b.report.tracker, "{what}: tracker name");
        assert_eq!(
            a.report.duration.value().to_bits(),
            b.report.duration.value().to_bits(),
            "{what}: node {} duration must be exact",
            a.id
        );
        // Bounded clauses: every energy total within rel 1e-9.
        for (label, x, y) in [
            ("net", a.net_energy().value(), b.net_energy().value()),
            (
                "gross",
                a.report.gross_energy.value(),
                b.report.gross_energy.value(),
            ),
            (
                "overhead",
                a.report.overhead_energy.value(),
                b.report.overhead_energy.value(),
            ),
            (
                "load_demand",
                a.report.load_demand.value(),
                b.report.load_demand.value(),
            ),
            (
                "load_served",
                a.report.load_served.value(),
                b.report.load_served.value(),
            ),
            (
                "loss",
                a.report.loss_energy.value(),
                b.report.loss_energy.value(),
            ),
            (
                "compute",
                a.report.compute_energy.value(),
                b.report.compute_energy.value(),
            ),
            (
                "final_store",
                a.report.final_store_energy.value(),
                b.report.final_store_energy.value(),
            ),
        ] {
            let rel = rel_err(x, y);
            assert!(
                rel <= NET_ENERGY_REL,
                "{what}: node {} {label} energy diverged by rel {rel:.3e} ({x} vs {y})",
                a.id
            );
        }
    }
    // Fleet-level classifications follow from the per-node ones, but
    // assert them anyway — they are what campaign gates consume.
    assert_eq!(reference.brown_out_count(), candidate.brown_out_count());
    assert_eq!(
        reference.cold_start_failures(),
        candidate.cold_start_failures()
    );
    assert_eq!(
        reference.net_negative_count(),
        candidate.net_negative_count()
    );
}

#[test]
fn vectorized_holds_the_contract_against_the_oracle_across_seeds() {
    for seed in [2011_u64, 7, 404] {
        let spec = spec(24, seed);
        let ctx = FleetContext::prepare(&spec).unwrap();
        let reference = FleetRunner::new(1).run_prepared(&ctx).unwrap();
        let vectorized = FleetRunner::new(2).run_vectorized_prepared(&ctx).unwrap();
        assert_contract(&reference, &vectorized, &format!("seed {seed}"));
    }
}

#[test]
fn vectorized_is_bit_identical_to_itself_across_workers_and_shards() {
    for seed in [2011_u64, 7, 404] {
        let spec = spec(24, seed);
        let ctx = FleetContext::prepare(&spec).unwrap();
        let reference = FleetRunner::new(1).run_vectorized_prepared(&ctx).unwrap();
        for workers in [1_usize, 2, 4] {
            for shard_size in [1_usize, 32, 257] {
                let runner = FleetRunner::new(workers).with_shard_size(shard_size);
                let candidate = runner.run_vectorized_prepared(&ctx).unwrap();
                assert_eq!(
                    reference, candidate,
                    "seed {seed}: vectorized run diverged from itself at \
                     {workers} workers, shard {shard_size}"
                );
            }
        }
    }
}

#[test]
fn vectorized_obs_counters_match_the_oracle_and_are_worker_invariant() {
    let mut spec = spec(24, 2011);
    spec.obs = true;
    let ctx = FleetContext::prepare(&spec).unwrap();
    let runner = FleetRunner::new(2).with_shard_size(8);
    let per_node = runner.run_prepared(&ctx).unwrap();
    let vectorized = runner.run_vectorized_prepared(&ctx).unwrap();
    assert_contract(&per_node, &vectorized, "obs fleet");
    let a = per_node.metrics.as_ref().expect("obs run carries metrics");
    let b = vectorized
        .metrics
        .as_ref()
        .expect("obs run carries metrics");
    // Counter sums are integers, so the exact-count clause extends to
    // the merged metric store verbatim.
    for name in [
        "engine.steps",
        "engine.dwell_steps",
        "node.measurements",
        "tracker.decisions",
        "tracker.ops",
        "converter.transfer_steps",
        "fleet.nodes",
    ] {
        assert_eq!(
            a.counter(name),
            b.counter(name),
            "fleet counter {name} diverged"
        );
    }
    // Span counts are exact too; their accumulated times are energies
    // of the same bounded-divergence class as the rest.
    for name in [
        "engine.drive",
        "engine.dwell",
        "node.harvesting",
        "node.measuring",
    ] {
        let sa = a.span_stats(name).expect("oracle records span");
        let sb = b.span_stats(name).expect("vectorized records span");
        assert_eq!(sa.count, sb.count, "span {name} count diverged");
        assert!(
            rel_err(sa.sim_time().value(), sb.sim_time().value()) <= NET_ENERGY_REL,
            "span {name} time diverged"
        );
    }
    // And the vectorized engine's merged store is worker-invariant at
    // equal shard size.
    let one = FleetRunner::new(1)
        .with_shard_size(8)
        .run_vectorized_prepared(&ctx)
        .unwrap();
    assert_eq!(one, vectorized, "vectorized obs run depends on workers");
}

#[test]
fn trackers_without_a_wide_lane_stay_bit_identical() {
    let spec = spec(8, 99);
    let ctx = FleetContext::prepare(&spec).unwrap();
    let runner = FleetRunner::new(2).with_shard_size(3);
    for &kind in &TrackerKind::ALL {
        if kind == TrackerKind::Focv {
            continue;
        }
        let per_node = runner.run_tracker_prepared(&ctx, kind).unwrap();
        let vectorized = runner.run_tracker_vectorized_prepared(&ctx, kind).unwrap();
        assert_eq!(
            per_node,
            vectorized,
            "{}: delegation lane must stay bit-identical",
            kind.label()
        );
    }
}

#[test]
fn uncached_fleets_delegate_and_stay_bit_identical() {
    let mut spec = spec(12, 7);
    spec.pv_cache = false;
    let ctx = FleetContext::prepare(&spec).unwrap();
    let runner = FleetRunner::new(2);
    let per_node = runner.run_prepared(&ctx).unwrap();
    let vectorized = runner.run_vectorized_prepared(&ctx).unwrap();
    assert_eq!(
        per_node, vectorized,
        "pv_cache: false has no cursor to reuse — must delegate to batch"
    );
}

#[test]
fn engine_aware_comparison_matrix_honours_the_contract() {
    let spec = spec(6, 5);
    let runner = FleetRunner::new(2);
    let per_node = compare_trackers_over_fleet_with(&spec, &runner, Engine::PerNode).unwrap();
    let vectorized = compare_trackers_over_fleet_with(&spec, &runner, Engine::Vectorized).unwrap();
    assert_eq!(per_node.len(), TrackerKind::ALL.len());
    assert_eq!(per_node.len(), vectorized.len());
    for ((kind_a, report_a), (kind_b, report_b)) in per_node.iter().zip(&vectorized) {
        assert_eq!(kind_a, kind_b);
        if *kind_a == TrackerKind::Focv {
            assert_contract(report_a, report_b, kind_a.label());
        } else {
            assert_eq!(report_a, report_b, "{}: delegation lane", kind_a.label());
        }
    }
}
