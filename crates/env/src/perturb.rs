//! Per-node illuminance-trace perturbation.
//!
//! A fleet of sensor nodes in one building shares the weather and the
//! lighting schedule but not the photometric details: a node by the
//! window sees a constant skylight offset the interior desk never gets,
//! dust or partial shading derates another's aperture, and cell-to-cell
//! photocurrent tolerance is (to first order) one more optical gain in
//! front of the same junction stack. [`TracePerturbation`] captures all
//! of that as an affine transform of a shared base trace:
//!
//! ```text
//! lux'(t) = max(0, gain · lux(t) + offset)
//! ```
//!
//! Folding the PV optical tolerance into `gain` is what lets an entire
//! heterogeneous fleet share a single memoized `eh_pv::CachedPvSurface`
//! per `(model, temperature)` — the electrical model stays identical
//! across nodes while the light each node sees differs.
//!
//! The clamp at 0 lx is load-bearing, not cosmetic: a negative offset
//! (an interior desk darker than the logged reference) would otherwise
//! drive night-time samples below zero, and every PV query downstream
//! rejects negative illuminance. The regression tests in this module
//! fail against the naive `gain·lux + offset` transform.

use crate::error::EnvError;
use crate::series::TimeSeries;

/// A validated affine illuminance perturbation: `gain`, then `offset`,
/// then a clamp at 0 lx.
///
/// ```
/// use eh_env::{profiles, TracePerturbation};
/// use eh_units::{Lux, Seconds};
///
/// let base = profiles::constant(Lux::new(100.0), Seconds::new(10.0));
/// let shaded = TracePerturbation::new(0.7, -50.0)?.apply(&base);
/// assert_eq!(shaded.sample(0), Some(20.0)); // 0.7·100 − 50
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePerturbation {
    gain: f64,
    offset_lux: f64,
}

impl TracePerturbation {
    /// Creates a perturbation with the given multiplicative `gain`
    /// (optical tolerance × dust/shading derating) and additive
    /// `offset_lux` (placement offset; may be negative — the output is
    /// clamped at 0 lx).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or negative gain and a non-finite offset: a
    /// NaN factor would silently poison every downstream energy ledger,
    /// and a negative gain has no optical meaning.
    pub fn new(gain: f64, offset_lux: f64) -> Result<Self, EnvError> {
        if !(gain.is_finite() && gain >= 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "gain",
                value: gain,
            });
        }
        if !offset_lux.is_finite() {
            return Err(EnvError::InvalidParameter {
                name: "offset_lux",
                value: offset_lux,
            });
        }
        Ok(Self { gain, offset_lux })
    }

    /// The do-nothing perturbation (gain 1, offset 0).
    pub fn identity() -> Self {
        Self {
            gain: 1.0,
            offset_lux: 0.0,
        }
    }

    /// The multiplicative factor.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The additive offset in lux.
    pub fn offset_lux(&self) -> f64 {
        self.offset_lux
    }

    /// Applies the transform to every sample of `trace`, keeping the
    /// time base. Output samples are clamped at 0 lx so a negative
    /// offset can never produce an unphysical negative illuminance.
    #[must_use]
    pub fn apply(&self, trace: &TimeSeries) -> TimeSeries {
        trace.map(|lux| (self.gain * lux + self.offset_lux).max(0.0))
    }
}

impl Default for TracePerturbation {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use eh_units::{Lux, Seconds};

    #[test]
    fn identity_is_exact() {
        let base = profiles::office_desk_mixed(3).decimate(600).unwrap();
        let out = TracePerturbation::identity().apply(&base);
        assert_eq!(out, base);
    }

    /// Regression (fails pre-fix): the naive `gain·lux + offset`
    /// transform drives dark samples negative under a negative placement
    /// offset; the clamp must hold the floor at exactly 0 lx.
    #[test]
    fn negative_offset_clamps_at_zero_lux() {
        let night = profiles::constant(Lux::new(5.0), Seconds::new(60.0));
        let dark_corner = TracePerturbation::new(0.8, -200.0).unwrap();
        let out = dark_corner.apply(&night);
        assert!(
            out.values().iter().all(|&v| v == 0.0),
            "negative illuminance leaked through: min = {}",
            out.min()
        );
        // A zero-gain blackout clamps too.
        let blackout = TracePerturbation::new(0.0, -1.0).unwrap().apply(&night);
        assert_eq!(blackout.min(), 0.0);
        assert_eq!(blackout.max(), 0.0);
    }

    /// Regression (fails pre-fix): non-finite and negative factors must
    /// be rejected at construction, not propagated into the simulation.
    #[test]
    fn non_finite_and_negative_factors_are_rejected() {
        for bad_gain in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            assert!(
                TracePerturbation::new(bad_gain, 0.0).is_err(),
                "gain {bad_gain} accepted"
            );
        }
        for bad_offset in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                TracePerturbation::new(1.0, bad_offset).is_err(),
                "offset {bad_offset} accepted"
            );
        }
        // Boundary values stay valid.
        assert!(TracePerturbation::new(0.0, -1e6).is_ok());
    }

    #[test]
    fn gain_and_offset_compose_in_order() {
        let base = profiles::constant(Lux::new(100.0), Seconds::new(10.0));
        let p = TracePerturbation::new(1.5, 10.0).unwrap();
        let out = p.apply(&base);
        assert_eq!(out.sample(0), Some(160.0)); // 1.5·100 + 10, not 1.5·(100+10)
        assert_eq!(out.dt(), base.dt());
        assert_eq!(out.len(), base.len());
    }
}
