//! Synthetic indoor/outdoor light environments for the DATE 2011 MPPT
//! reproduction.
//!
//! §II-B of the paper selects the sample-and-hold period from 24-hour
//! logs of the PV module's open-circuit voltage: one on an office desk
//! (mixed natural and artificial light — Fig. 2), one on a lab desk on a
//! Sunday with the blinds closed, and a "semi-mobile" day in which the
//! cell was taken outdoors at lunchtime. The original logs are lab data
//! we cannot rerun, so this crate synthesises illuminance traces with the
//! same *dynamics*: sunrise and sunset ramps, lamp switch-on/off
//! edges, occupancy shadowing, cloud variability and the indoor↔outdoor
//! lunch excursion. All stochastic processes are seeded, so every run is
//! reproducible.
//!
//! The [`sampling_error`] module implements the paper's Eq. (2) — the
//! worst-case mean error of a sampled estimate as a function of sampling
//! period — which is the analysis that justifies the 69 s hold period.
//!
//! # Quickstart
//!
//! ```
//! use eh_env::profiles;
//! use eh_units::Seconds;
//!
//! let day = profiles::office_desk_mixed(42);
//! assert_eq!(day.duration().as_hours().round(), 24.0);
//! // Midday is brighter than midnight.
//! let midnight = day.value_at(Seconds::from_hours(0.5)).unwrap();
//! let noon = day.value_at(Seconds::from_hours(12.5)).unwrap();
//! assert!(noon > 10.0 * midnight.max(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod lamps;
mod perturb;
pub mod process;
pub mod profiles;
pub mod sampling_error;
pub mod season;
mod series;
pub mod solar;
pub mod weather;
pub mod week;

pub use error::EnvError;
pub use perturb::TracePerturbation;
pub use series::TimeSeries;
