//! Error type for the environment crate.

use std::error::Error;
use std::fmt;

/// Errors returned by environment constructors and analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnvError {
    /// A parameter was non-physical or inconsistent.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A series was too short for the requested analysis.
    SeriesTooShort {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::InvalidParameter { name, value } => {
                write!(f, "invalid environment parameter {name} = {value}")
            }
            EnvError::SeriesTooShort { have, need } => {
                write!(f, "series too short: have {have} samples, need {need}")
            }
        }
    }
}

impl Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EnvError::SeriesTooShort { have: 3, need: 10 };
        assert_eq!(e.to_string(), "series too short: have 3 samples, need 10");
        let e = EnvError::InvalidParameter {
            name: "dt",
            value: 0.0,
        };
        assert!(e.to_string().contains("dt"));
    }
}
