//! Seeded daily weather regimes as a three-state Markov chain.
//!
//! Endurance campaigns attenuate each day's clear-sky [`SolarDay`]
//! (from [`crate::season::SeasonalSolar`]) by a weather factor. The
//! regime sequence comes from a first-order Markov chain over
//! [`WeatherKind`] with a validated 3×3 transition matrix, stepped once
//! per simulated day.
//!
//! # Draw budget (order-pinning contract)
//!
//! Like `FleetSpec`'s nine-draws-per-node population contract, the
//! weather stream is **order-pinned**: [`WeatherModel::step_day`] draws
//! **exactly one** uniform from its RNG per call, unconditionally,
//! *before* any branching on the transition matrix. Consequences:
//!
//! * the day-`d` regime depends only on `(matrix, seed, d)` — never on
//!   how the caller batches or shards days;
//! * the sequence for `n` days is a strict prefix of the sequence for
//!   `n + m` days (prefix stability);
//! * [`WeatherModel::draws`] after `k` steps is exactly `k` for *any*
//!   matrix, which the regression test below pins so a future edit
//!   cannot silently make the draw count state-dependent.
//!
//! [`SolarDay`]: crate::solar::SolarDay

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::EnvError;

/// A daily weather regime, mapped to a broadband illuminance
/// attenuation factor applied on top of the clear-sky profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeatherKind {
    /// Clear sky: no attenuation.
    Clear,
    /// Overcast: heavy cloud, ~35 % of clear-sky illuminance.
    Overcast,
    /// Monsoon/storm: dense cloud and rain, ~12 % of clear-sky.
    Monsoon,
}

impl WeatherKind {
    /// All regimes in matrix row/column order.
    pub const ALL: [WeatherKind; 3] = [
        WeatherKind::Clear,
        WeatherKind::Overcast,
        WeatherKind::Monsoon,
    ];

    /// Multiplicative attenuation applied to clear-sky illuminance.
    pub fn attenuation(self) -> f64 {
        match self {
            WeatherKind::Clear => 1.0,
            WeatherKind::Overcast => 0.35,
            WeatherKind::Monsoon => 0.12,
        }
    }

    /// Index into a transition-matrix row/column.
    fn index(self) -> usize {
        match self {
            WeatherKind::Clear => 0,
            WeatherKind::Overcast => 1,
            WeatherKind::Monsoon => 2,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WeatherKind::Clear => "clear",
            WeatherKind::Overcast => "overcast",
            WeatherKind::Monsoon => "monsoon",
        }
    }
}

/// A seeded first-order Markov chain over [`WeatherKind`], stepped once
/// per simulated day.
///
/// ```
/// use eh_env::weather::WeatherModel;
///
/// let mut w = WeatherModel::temperate(2011)?;
/// let fortnight: Vec<_> = (0..14).map(|_| w.step_day()).collect();
/// assert_eq!(w.draws(), 14);
/// assert_eq!(fortnight.len(), 14);
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WeatherModel {
    /// `matrix[from][to]`: P(tomorrow = to | today = from). Rows sum to 1.
    matrix: [[f64; 3]; 3],
    state: WeatherKind,
    rng: StdRng,
    draws: u64,
}

impl WeatherModel {
    /// Creates a chain from a row-stochastic transition matrix, an
    /// initial regime and a seed.
    ///
    /// # Errors
    ///
    /// Rejects matrices with negative/non-finite entries or rows that do
    /// not sum to 1 within 1e-9.
    pub fn new(matrix: [[f64; 3]; 3], initial: WeatherKind, seed: u64) -> Result<Self, EnvError> {
        for row in &matrix {
            let mut sum = 0.0;
            for &p in row {
                if !(p.is_finite() && p >= 0.0) {
                    return Err(EnvError::InvalidParameter {
                        name: "weather_transition",
                        value: p,
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(EnvError::InvalidParameter {
                    name: "weather_row_sum",
                    value: sum,
                });
            }
        }
        Ok(Self {
            matrix,
            state: initial,
            rng: StdRng::seed_from_u64(seed),
            draws: 0,
        })
    }

    /// Temperate maritime climate (UK-like): sticky clear and overcast
    /// regimes, rare short storms.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`WeatherModel::new`].
    pub fn temperate(seed: u64) -> Result<Self, EnvError> {
        Self::new(
            [[0.70, 0.27, 0.03], [0.35, 0.55, 0.10], [0.30, 0.45, 0.25]],
            WeatherKind::Clear,
            seed,
        )
    }

    /// Monsoon-season climate (Nepal-like wet season): long storm runs
    /// broken by overcast spells, clear days scarce.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`WeatherModel::new`].
    pub fn monsoon_season(seed: u64) -> Result<Self, EnvError> {
        Self::new(
            [[0.30, 0.45, 0.25], [0.10, 0.50, 0.40], [0.05, 0.30, 0.65]],
            WeatherKind::Overcast,
            seed,
        )
    }

    /// Arid climate: overwhelmingly clear, storms vanishingly rare.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`WeatherModel::new`].
    pub fn arid(seed: u64) -> Result<Self, EnvError> {
        Self::new(
            [[0.92, 0.07, 0.01], [0.60, 0.35, 0.05], [0.50, 0.40, 0.10]],
            WeatherKind::Clear,
            seed,
        )
    }

    /// The current regime without advancing.
    pub fn state(&self) -> WeatherKind {
        self.state
    }

    /// Total uniform draws consumed so far — always equal to the number
    /// of [`step_day`](Self::step_day) calls, by contract.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Advances one day and returns the new regime.
    ///
    /// Draws exactly one uniform, unconditionally, before branching —
    /// see the module docs for why this is load-bearing.
    pub fn step_day(&mut self) -> WeatherKind {
        let u: f64 = self.rng.gen();
        self.draws += 1;
        let row = &self.matrix[self.state.index()];
        // Inverse-CDF over the row; the final arm absorbs rounding so a
        // u of exactly 1 − ε still lands in a valid state.
        let mut acc = 0.0;
        let mut next = *WeatherKind::ALL.last().expect("non-empty");
        for (kind, &p) in WeatherKind::ALL.iter().zip(row.iter()) {
            acc += p;
            if u < acc {
                next = *kind;
                break;
            }
        }
        self.state = next;
        self.state
    }

    /// The attenuation sequence for `days` consecutive days, starting
    /// from the day after the initial state.
    pub fn attenuations(&mut self, days: usize) -> Vec<f64> {
        (0..days).map(|_| self.step_day().attenuation()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence(
        preset: fn(u64) -> Result<WeatherModel, EnvError>,
        days: usize,
    ) -> Vec<WeatherKind> {
        let mut w = preset(2011).unwrap();
        (0..days).map(|_| w.step_day()).collect()
    }

    #[test]
    fn draw_budget_is_one_per_day_for_any_matrix() {
        // Satellite-5 regression: the draw count must be exactly the day
        // count regardless of the matrix shape — a state-dependent draw
        // (e.g. rejection sampling, or skipping the draw for absorbing
        // rows) would break prefix stability across campaign lengths.
        let matrices = [
            WeatherModel::temperate(7).unwrap(),
            WeatherModel::monsoon_season(7).unwrap(),
            WeatherModel::arid(7).unwrap(),
            // Degenerate absorbing matrix: stays Clear forever. Still
            // must burn one draw per day.
            WeatherModel::new(
                [[1.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]],
                WeatherKind::Clear,
                7,
            )
            .unwrap(),
        ];
        for mut w in matrices {
            for day in 1..=365u64 {
                w.step_day();
                assert_eq!(w.draws(), day);
            }
        }
    }

    #[test]
    fn sequences_are_prefix_stable() {
        for preset in [
            WeatherModel::temperate as fn(u64) -> _,
            WeatherModel::monsoon_season,
            WeatherModel::arid,
        ] {
            let short = sequence(preset, 30);
            let long = sequence(preset, 365);
            assert_eq!(&long[..30], &short[..]);
        }
    }

    #[test]
    fn same_seed_same_sequence_distinct_seeds_differ() {
        let a = sequence(WeatherModel::temperate, 120);
        let b = sequence(WeatherModel::temperate, 120);
        assert_eq!(a, b);
        let mut other = WeatherModel::temperate(2012).unwrap();
        let c: Vec<_> = (0..120).map(|_| other.step_day()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn climates_have_the_intended_character() {
        let count = |seq: &[WeatherKind], k: WeatherKind| seq.iter().filter(|&&s| s == k).count();
        let temperate = sequence(WeatherModel::temperate, 730);
        let monsoon = sequence(WeatherModel::monsoon_season, 730);
        let arid = sequence(WeatherModel::arid, 730);
        assert!(count(&arid, WeatherKind::Clear) > count(&temperate, WeatherKind::Clear));
        assert!(count(&monsoon, WeatherKind::Monsoon) > count(&temperate, WeatherKind::Monsoon));
        assert!(count(&monsoon, WeatherKind::Clear) < count(&monsoon, WeatherKind::Monsoon));
    }

    #[test]
    fn invalid_matrices_are_rejected() {
        // Row does not sum to 1.
        assert!(WeatherModel::new(
            [[0.5, 0.4, 0.0], [0.3, 0.6, 0.1], [0.3, 0.4, 0.3]],
            WeatherKind::Clear,
            1,
        )
        .is_err());
        // Negative probability.
        assert!(WeatherModel::new(
            [[1.1, -0.1, 0.0], [0.3, 0.6, 0.1], [0.3, 0.4, 0.3]],
            WeatherKind::Clear,
            1,
        )
        .is_err());
        assert!(WeatherModel::new(
            [[f64::NAN, 0.5, 0.5], [0.3, 0.6, 0.1], [0.3, 0.4, 0.3]],
            WeatherKind::Clear,
            1,
        )
        .is_err());
    }

    #[test]
    fn attenuations_match_states() {
        let mut a = WeatherModel::temperate(99).unwrap();
        let mut b = WeatherModel::temperate(99).unwrap();
        let atts = a.attenuations(60);
        let states: Vec<_> = (0..60).map(|_| b.step_day()).collect();
        for (att, st) in atts.iter().zip(states.iter()) {
            assert_eq!(*att, st.attenuation());
        }
    }
}
