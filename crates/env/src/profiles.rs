//! The 24-hour illuminance scenarios from §II-B of the paper.
//!
//! Three scenarios are provided, mirroring the paper's logging campaigns:
//!
//! * [`office_desk_mixed`] — the Fig. 2 setting: an office desk lit by a
//!   mix of natural window light and the ceiling luminaires; sunrise and
//!   the end-of-day lights-off edge are clearly identifiable.
//! * [`desk_weekend_blinds_closed`] — the Sunday lab-desk test with the
//!   blinds closed: only a small daylight leak, no lamps.
//! * [`semi_mobile_friday`] — the mobile-sensor mimic: office in the
//!   morning, outdoors over lunch (tens of klux), office again, then an
//!   evening at home under lamps.
//!
//! All traces are 24 h at 1 s resolution and fully determined by their
//! seed.

use eh_units::{Lux, Seconds};

use crate::lamps::Lamp;
use crate::process::{OrnsteinUhlenbeck, RandomTelegraph};
use crate::series::TimeSeries;
use crate::solar::SolarDay;

/// Samples per 24-hour trace (1 Hz inclusive of both endpoints).
const DAY_SAMPLES: usize = 86_401;

/// Shared scaffolding: per-second composition of daylight, lamps and
/// stochastic texture.
struct SceneryBuilder {
    solar: SolarDay,
    window_factor: f64,
    lamps: Vec<Lamp>,
    cloud: OrnsteinUhlenbeck,
    occupancy: Option<RandomTelegraph>,
    occupancy_attenuation: f64,
    sensor_noise: OrnsteinUhlenbeck,
}

impl SceneryBuilder {
    fn build(mut self) -> TimeSeries {
        let dt = 1.0f64;
        let mut values = Vec::with_capacity(DAY_SAMPLES);
        for n in 0..DAY_SAMPLES {
            let t = Seconds::new(n as f64 * dt);
            let cloud_x = self.cloud.step(dt);
            // Cloud factor in [0.25, 1.0]: logistic squashing of the OU state.
            let cloud_factor = 0.25 + 0.75 / (1.0 + (-cloud_x).exp());
            let daylight = self.solar.illuminance(t).value() * self.window_factor * cloud_factor;
            let lamp: f64 = self.lamps.iter().map(|l| l.illuminance(t).value()).sum();
            let mut lux = daylight + lamp;
            if let Some(occ) = self.occupancy.as_mut() {
                if occ.step(dt) {
                    lux *= 1.0 - self.occupancy_attenuation;
                }
            }
            // Small multiplicative sensor/flicker noise.
            let noise = 1.0 + 0.01 * self.sensor_noise.step(dt).clamp(-3.0, 3.0);
            values.push((lux * noise).max(0.0));
        }
        TimeSeries::new(Seconds::ZERO, Seconds::new(dt), values)
            .expect("profile construction uses valid parameters")
    }
}

/// The Fig. 2 office-desk scenario: mixed natural and artificial light.
///
/// Sunrise appears as a gradual morning ramp through the window; the
/// ceiling lights run 08:00–18:30 and their switch-off is the sharp
/// evening edge the paper points at in Fig. 2.
pub fn office_desk_mixed(seed: u64) -> TimeSeries {
    SceneryBuilder {
        solar: SolarDay::uk_summer().expect("valid constants"),
        window_factor: 0.015,
        lamps: vec![Lamp::new(Lux::new(420.0), Seconds::new(2.0))
            .expect("valid constants")
            .with_interval(Seconds::from_hours(8.0), Seconds::from_hours(18.5))
            .expect("valid interval")],
        cloud: OrnsteinUhlenbeck::new(0.0, 1200.0, 1.0, seed).expect("valid constants"),
        occupancy: Some(
            RandomTelegraph::new(1.0 / 1800.0, 1.0 / 300.0, seed.wrapping_add(1))
                .expect("valid constants"),
        ),
        occupancy_attenuation: 0.35,
        sensor_noise: OrnsteinUhlenbeck::new(0.0, 5.0, 1.0, seed.wrapping_add(2))
            .expect("valid constants"),
    }
    .build()
}

/// The Sunday lab-desk scenario with the blinds closed: only a small
/// daylight leak (no lamps, nobody in the lab).
pub fn desk_weekend_blinds_closed(seed: u64) -> TimeSeries {
    SceneryBuilder {
        solar: SolarDay::uk_summer().expect("valid constants"),
        window_factor: 0.0012,
        lamps: Vec::new(),
        cloud: OrnsteinUhlenbeck::new(0.0, 1800.0, 0.5, seed).expect("valid constants"),
        occupancy: None,
        occupancy_attenuation: 0.0,
        // An empty, blinds-closed lab is optically quiet: only a whisper
        // of sensor noise, matching the very low Ē the paper measured on
        // this log (12.7 mV at a 1-minute period).
        sensor_noise: OrnsteinUhlenbeck::new(0.0, 20.0, 0.18, seed.wrapping_add(2))
            .expect("valid constants"),
    }
    .build()
}

/// The semi-mobile Friday: office morning and afternoon, a lunchtime hour
/// outdoors in direct daylight, and an evening at home under a lamp.
///
/// This is the scenario that motivates the whole paper: the same sensor
/// crosses a ~100× range of intensities within one day, so a tracker must
/// work both indoors and outdoors.
pub fn semi_mobile_friday(seed: u64) -> TimeSeries {
    let solar = SolarDay::uk_summer().expect("valid constants");
    let office = office_desk_mixed(seed);
    let mut cloud =
        OrnsteinUhlenbeck::new(0.0, 900.0, 0.8, seed.wrapping_add(7)).expect("valid constants");
    let home_lamp = Lamp::new(Lux::new(180.0), Seconds::new(1.0))
        .expect("valid constants")
        .with_interval(Seconds::from_hours(19.0), Seconds::from_hours(23.0))
        .expect("valid interval");

    let lunch_start = Seconds::from_hours(12.0);
    let lunch_end = Seconds::from_hours(13.0);
    let leave_work = Seconds::from_hours(17.5);

    let mut values = Vec::with_capacity(DAY_SAMPLES);
    for n in 0..DAY_SAMPLES {
        let t = Seconds::new(n as f64);
        let cloud_x = cloud.step(1.0);
        let cloud_factor = 0.25 + 0.75 / (1.0 + (-cloud_x).exp());
        let v = if t.value() >= lunch_start.value() && t.value() < lunch_end.value() {
            // Outdoors: direct (slightly shaded) daylight.
            solar.illuminance(t).value() * 0.55 * cloud_factor
        } else if t.value() >= leave_work.value() {
            // Evening at home: lamp plus a trickle of dusk light.
            home_lamp.illuminance(t).value() + solar.illuminance(t).value() * 0.004 * cloud_factor
        } else {
            office.sample(n).unwrap_or(0.0)
        };
        values.push(v.max(0.0));
    }
    TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), values)
        .expect("profile construction uses valid parameters")
}

/// A constant-illuminance trace — the bench lamp used for Table I and
/// Fig. 4 style experiments.
pub fn constant(lux: Lux, duration: Seconds) -> TimeSeries {
    let n = (duration.value().max(1.0) as usize) + 1;
    TimeSeries::from_fn(Seconds::ZERO, Seconds::new(1.0), n, |_| lux.value())
        .expect("constant profile parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_cover_24_hours_at_1hz() {
        for trace in [
            office_desk_mixed(1),
            desk_weekend_blinds_closed(1),
            semi_mobile_friday(1),
        ] {
            assert_eq!(trace.len(), DAY_SAMPLES);
            assert!((trace.duration().as_hours() - 24.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(office_desk_mixed(5), office_desk_mixed(5));
        assert_ne!(
            office_desk_mixed(5).values()[40_000],
            office_desk_mixed(6).values()[40_000]
        );
    }

    #[test]
    fn office_shows_sunrise_and_lights_off() {
        let day = office_desk_mixed(3);
        let night = day.value_at(Seconds::from_hours(2.0)).unwrap();
        let morning = day.value_at(Seconds::from_hours(9.0)).unwrap();
        assert!(morning > night + 100.0, "sunrise+lamps must be visible");
        // Lights-off at 18:30: a sharp drop.
        let before_off = day.value_at(Seconds::from_hours(18.4)).unwrap();
        let after_off = day.value_at(Seconds::from_hours(18.6)).unwrap();
        assert!(
            before_off > after_off + 150.0,
            "lights-off edge: {before_off} → {after_off}"
        );
    }

    #[test]
    fn office_is_indoor_intensity() {
        let day = office_desk_mixed(3);
        assert!(day.max() < 5_000.0, "desk max = {}", day.max());
        assert!(day.max() > 300.0);
    }

    #[test]
    fn weekend_is_dim_but_shows_daylight() {
        let day = desk_weekend_blinds_closed(3);
        assert!(day.max() < 200.0, "blinds closed: max = {}", day.max());
        let noon = day.value_at(Seconds::from_hours(13.0)).unwrap();
        let night = day.value_at(Seconds::from_hours(1.0)).unwrap();
        assert!(noon > night + 5.0, "sunrise must still be identifiable");
    }

    #[test]
    fn semi_mobile_has_outdoor_lunch_spike() {
        let day = semi_mobile_friday(3);
        let lunch = day.value_at(Seconds::from_hours(12.5)).unwrap();
        let morning = day.value_at(Seconds::from_hours(10.0)).unwrap();
        assert!(
            lunch > 10_000.0,
            "outdoor lunch must reach tens of klux, got {lunch}"
        );
        assert!(lunch > 10.0 * morning);
        // Evening lamp visible, then dark.
        let evening = day.value_at(Seconds::from_hours(20.0)).unwrap();
        let late = day.value_at(Seconds::from_hours(23.5)).unwrap();
        assert!(evening > 100.0);
        assert!(late < 20.0);
    }

    #[test]
    fn no_negative_illuminance_anywhere() {
        for trace in [
            office_desk_mixed(9),
            desk_weekend_blinds_closed(9),
            semi_mobile_friday(9),
        ] {
            assert!(trace.min() >= 0.0);
        }
    }

    #[test]
    fn constant_profile() {
        let c = constant(Lux::new(1000.0), Seconds::new(300.0));
        assert_eq!(c.min(), 1000.0);
        assert_eq!(c.max(), 1000.0);
        assert_eq!(c.len(), 301);
    }
}
