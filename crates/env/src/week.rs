//! Multi-day scenario composition.
//!
//! The paper logs single days; a deployed sensor lives through weeks.
//! This module chains the daily profiles into longer scenarios — the
//! standard office week (five working days, a semi-mobile Friday and a
//! blinds-closed weekend) and arbitrary custom sequences — for endurance
//! experiments.

use eh_units::Seconds;

use crate::error::EnvError;
use crate::profiles;
use crate::series::TimeSeries;

/// The kind of day to place in a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DayKind {
    /// Office desk, mixed natural and artificial light (Fig. 2).
    Office,
    /// Semi-mobile day with the outdoor lunch excursion.
    SemiMobile,
    /// Weekend desk with the blinds closed.
    WeekendBlindsClosed,
}

/// Builds one day's trace of the given kind with a specific seed.
pub fn day(kind: DayKind, seed: u64) -> TimeSeries {
    match kind {
        DayKind::Office => profiles::office_desk_mixed(seed),
        DayKind::SemiMobile => profiles::semi_mobile_friday(seed),
        DayKind::WeekendBlindsClosed => profiles::desk_weekend_blinds_closed(seed),
    }
}

/// Chains a sequence of day kinds into one continuous trace, seeding each
/// day independently from `base_seed` (day `n` uses `base_seed + n` so
/// no two days repeat exactly).
///
/// Each daily profile spans 24 h inclusive of both midnights; the
/// duplicated boundary sample is dropped when chaining.
///
/// # Errors
///
/// Returns [`EnvError::InvalidParameter`] for an empty sequence.
pub fn sequence(kinds: &[DayKind], base_seed: u64) -> Result<TimeSeries, EnvError> {
    if kinds.is_empty() {
        return Err(EnvError::InvalidParameter {
            name: "kinds",
            value: 0.0,
        });
    }
    let mut out: Option<TimeSeries> = None;
    for (n, &kind) in kinds.iter().enumerate() {
        let trace = day(kind, base_seed.wrapping_add(n as u64));
        out = Some(match out {
            None => trace,
            Some(acc) => {
                // Drop the duplicated midnight sample at the joint.
                let tail =
                    TimeSeries::new(Seconds::ZERO, trace.dt(), trace.values()[1..].to_vec())?;
                acc.concat(&tail)?
            }
        });
    }
    Ok(out.expect("non-empty sequence produces a trace"))
}

/// The standard deployment week: Monday–Thursday at the office, a
/// semi-mobile Friday, and a blinds-closed weekend.
///
/// # Errors
///
/// Never fails for this fixed sequence; mirrors [`sequence`].
pub fn office_week(base_seed: u64) -> Result<TimeSeries, EnvError> {
    sequence(
        &[
            DayKind::Office,
            DayKind::Office,
            DayKind::Office,
            DayKind::Office,
            DayKind::SemiMobile,
            DayKind::WeekendBlindsClosed,
            DayKind::WeekendBlindsClosed,
        ],
        base_seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sequence_rejected() {
        assert!(sequence(&[], 1).is_err());
    }

    #[test]
    fn single_day_sequence_equals_profile() {
        let seq = sequence(&[DayKind::Office], 9).unwrap();
        let direct = profiles::office_desk_mixed(9);
        assert_eq!(seq, direct);
    }

    #[test]
    fn week_spans_seven_days() {
        let week = office_week(7).unwrap();
        assert!((week.duration().as_hours() - 7.0 * 24.0).abs() < 1e-6);
    }

    #[test]
    fn days_are_independently_seeded() {
        let two = sequence(&[DayKind::Office, DayKind::Office], 3).unwrap();
        // Noon of day 1 vs noon of day 2: different stochastic texture.
        let a = two.value_at(Seconds::from_hours(12.0)).unwrap();
        let b = two.value_at(Seconds::from_hours(36.0)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn weekend_days_are_dim() {
        let week = office_week(5).unwrap();
        // Saturday noon (day 6) is far dimmer than Monday noon.
        let monday = week.value_at(Seconds::from_hours(12.0)).unwrap();
        let saturday = week
            .value_at(Seconds::from_hours(5.0 * 24.0 + 12.0))
            .unwrap();
        assert!(saturday < monday * 0.5, "sat {saturday} vs mon {monday}");
    }

    #[test]
    fn concat_rejects_dt_mismatch() {
        let a = profiles::office_desk_mixed(1);
        let b = profiles::office_desk_mixed(2).decimate(2).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn friday_has_the_lunch_spike() {
        let week = office_week(11).unwrap();
        let friday_lunch = week
            .value_at(Seconds::from_hours(4.0 * 24.0 + 12.5))
            .unwrap();
        assert!(friday_lunch > 10_000.0, "lunch = {friday_lunch}");
    }
}
