//! Seasonal, latitude-parameterized solar days.
//!
//! The paper's two outdoor anchors — [`SolarDay::uk_summer`] and
//! [`SolarDay::uk_winter`] — are single days. Multi-year endurance
//! campaigns need the whole annual cycle between them: day length and
//! clear-sky peak vary with the solar declination at the deployment's
//! latitude. [`SeasonalSolar`] interpolates a [`SolarDay`] for any day
//! of the year from exactly that geometry:
//!
//! * declination `δ(d) = −23.44° · cos(2π (d + 10) / 365.25)`,
//! * day length from the sunrise hour angle `cos ω₀ = −tan φ · tan δ`
//!   (clamped, so high latitudes saturate instead of erroring),
//! * clear-sky peak interpolated between the winter and summer anchor
//!   peaks by the noon solar elevation's position between the year's
//!   own extremes at that latitude.
//!
//! Everything here is a **pure function of `(latitude, day_of_year)`**:
//! no random state, no hidden caches — the deterministic backbone the
//! campaign layer's seeded weather regimes modulate multiplicatively.

use eh_units::{Lux, Seconds};

use crate::error::EnvError;
use crate::solar::SolarDay;

/// Mean tropical-year length used for the declination phase.
const YEAR_DAYS: f64 = 365.25;
/// Earth's axial tilt in degrees.
const TILT_DEG: f64 = 23.44;
/// Shortest synthesized day: high latitudes clamp here instead of
/// producing a sunrise after sunset (which [`SolarDay::new`] rejects).
const MIN_DAY_HOURS: f64 = 1.0;
/// Longest synthesized day, the mirror clamp for polar summer.
const MAX_DAY_HOURS: f64 = 23.0;

/// A latitude-anchored annual solar cycle: produces one [`SolarDay`]
/// per day of year, sweeping between a winter and a summer anchor.
///
/// ```
/// use eh_env::season::SeasonalSolar;
///
/// let solstices = SeasonalSolar::temperate_uk()?;
/// let june = solstices.solar_day(172)?;   // around the summer solstice
/// let december = solstices.solar_day(355)?;
/// assert!(june.daylight() > december.daylight());
/// assert!(june.peak() > december.peak());
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalSolar {
    latitude_deg: f64,
    summer_peak: Lux,
    winter_peak: Lux,
    attenuation_exponent: f64,
}

impl SeasonalSolar {
    /// Creates a seasonal cycle for a deployment latitude with clear-sky
    /// peak illuminance anchors at the summer and winter solstices.
    ///
    /// # Errors
    ///
    /// Rejects latitudes beyond ±66° (polar day/night has no
    /// sunrise/sunset to interpolate), non-positive or non-finite peaks,
    /// and a summer peak below the winter peak.
    pub fn new(latitude_deg: f64, summer_peak: Lux, winter_peak: Lux) -> Result<Self, EnvError> {
        if !(latitude_deg.is_finite() && latitude_deg.abs() <= 66.0) {
            return Err(EnvError::InvalidParameter {
                name: "latitude_deg",
                value: latitude_deg,
            });
        }
        if !(winter_peak.value().is_finite() && winter_peak.value() > 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "winter_peak",
                value: winter_peak.value(),
            });
        }
        if !(summer_peak.value().is_finite() && summer_peak.value() >= winter_peak.value()) {
            return Err(EnvError::InvalidParameter {
                name: "summer_peak",
                value: summer_peak.value(),
            });
        }
        Ok(Self {
            latitude_deg,
            summer_peak,
            winter_peak,
            attenuation_exponent: 1.3,
        })
    }

    /// The paper's Southampton setting generalized to a full year:
    /// latitude 52° N between the 90 klx summer and 20 klx winter
    /// anchors of [`SolarDay::uk_summer`] / [`SolarDay::uk_winter`].
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`SeasonalSolar::new`].
    pub fn temperate_uk() -> Result<Self, EnvError> {
        Self::new(52.0, Lux::new(90_000.0), Lux::new(20_000.0))
    }

    /// A low-latitude tropical cycle (weak seasonality, strong sun):
    /// latitude 15° with 110 klx / 80 klx anchors.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`SeasonalSolar::new`].
    pub fn tropical() -> Result<Self, EnvError> {
        Self::new(15.0, Lux::new(110_000.0), Lux::new(80_000.0))
    }

    /// The deployment latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude_deg
    }

    /// Solar declination in degrees for a day of year (0-based; values
    /// beyond one year wrap, so multi-year campaigns can index straight
    /// through).
    pub fn declination_deg(&self, day_of_year: u32) -> f64 {
        let d = f64::from(day_of_year) % YEAR_DAYS;
        -TILT_DEG * (std::f64::consts::TAU * (d + 10.0) / YEAR_DAYS).cos()
    }

    /// Daylight hours for a day of year, from the sunrise hour angle,
    /// clamped to `[1, 23]` hours.
    pub fn day_length_hours(&self, day_of_year: u32) -> f64 {
        let phi = self.latitude_deg.to_radians();
        let delta = self.declination_deg(day_of_year).to_radians();
        let cos_omega = (-phi.tan() * delta.tan()).clamp(-1.0, 1.0);
        let omega = cos_omega.acos();
        (24.0 * omega / std::f64::consts::PI).clamp(MIN_DAY_HOURS, MAX_DAY_HOURS)
    }

    /// Sine of the noon solar elevation for a day of year.
    fn noon_elevation_sin(&self, day_of_year: u32) -> f64 {
        let phi = self.latitude_deg;
        let delta = self.declination_deg(day_of_year);
        (90.0 - (phi - delta).abs()).to_radians().sin().max(0.0)
    }

    /// Clear-sky peak illuminance for a day of year: the winter anchor
    /// plus the summer-minus-winter span scaled by where today's noon
    /// elevation sits between this latitude's own annual extremes.
    pub fn peak(&self, day_of_year: u32) -> Lux {
        let phi = self.latitude_deg;
        // Annual extremes of the noon elevation at this latitude.
        let lo = (90.0 - (phi + TILT_DEG).abs())
            .min(90.0 - (phi - TILT_DEG).abs())
            .to_radians()
            .sin()
            .max(0.0);
        let hi = (90.0 - (phi + TILT_DEG).abs())
            .max(90.0 - (phi - TILT_DEG).abs())
            .to_radians()
            .sin()
            .max(0.0);
        let s = if hi > lo {
            ((self.noon_elevation_sin(day_of_year) - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Lux::new(
            self.winter_peak.value() + (self.summer_peak.value() - self.winter_peak.value()) * s,
        )
    }

    /// The [`SolarDay`] of a day of year: the day length centred on
    /// solar noon with the seasonal clear-sky peak.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed `SeasonalSolar` (lengths and peaks
    /// are clamped into [`SolarDay::new`]'s valid range); the `Result`
    /// mirrors the underlying constructor.
    pub fn solar_day(&self, day_of_year: u32) -> Result<SolarDay, EnvError> {
        let half = self.day_length_hours(day_of_year) / 2.0;
        SolarDay::new(
            Seconds::from_hours(12.0 - half),
            Seconds::from_hours(12.0 + half),
            self.peak(day_of_year),
            self.attenuation_exponent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperate_cycle_brackets_the_paper_anchors() {
        let s = SeasonalSolar::temperate_uk().unwrap();
        let june = s.solar_day(172).unwrap();
        let dec = s.solar_day(355).unwrap();
        // Solstice day lengths bracket the paper's 16 h / 8 h days.
        assert!(june.daylight().value() > 15.0 * 3600.0);
        assert!(dec.daylight().value() < 9.0 * 3600.0);
        // Peaks land on the anchors at the solstices (within the
        // few-day offset of the cosine phase).
        assert!((june.peak().value() - 90_000.0).abs() < 2_000.0);
        assert!((dec.peak().value() - 20_000.0).abs() < 2_000.0);
    }

    #[test]
    fn equinox_sits_between_the_solstices() {
        let s = SeasonalSolar::temperate_uk().unwrap();
        let march = s.solar_day(80).unwrap();
        assert!((s.day_length_hours(80) - 12.0).abs() < 0.5);
        assert!(march.peak().value() > 20_000.0);
        assert!(march.peak().value() < 90_000.0);
    }

    #[test]
    fn tropics_have_weak_seasonality() {
        let s = SeasonalSolar::tropical().unwrap();
        let spread = s.day_length_hours(172) - s.day_length_hours(355);
        assert!(
            spread.abs() < 2.5,
            "tropical day-length swing {spread} h too large"
        );
        for d in (0..730).step_by(30) {
            assert!(s.peak(d).value() >= 80_000.0 - 1e-9);
        }
    }

    #[test]
    fn days_wrap_across_years() {
        let s = SeasonalSolar::temperate_uk().unwrap();
        // Day 400 is day 400 − 365.25 ≈ 34.75 into the second year; the
        // cycle must keep moving rather than freeze or panic.
        assert!(s.day_length_hours(400) < s.day_length_hours(172 + 365));
        assert!(s.solar_day(730).is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SeasonalSolar::new(70.0, Lux::new(90e3), Lux::new(20e3)).is_err());
        assert!(SeasonalSolar::new(f64::NAN, Lux::new(90e3), Lux::new(20e3)).is_err());
        assert!(SeasonalSolar::new(52.0, Lux::new(0.0), Lux::new(0.0)).is_err());
        // Summer anchor below winter anchor is inconsistent.
        assert!(SeasonalSolar::new(52.0, Lux::new(10e3), Lux::new(20e3)).is_err());
        // Southern hemisphere is fine and flips the seasons.
        let south = SeasonalSolar::new(-35.0, Lux::new(100e3), Lux::new(40e3)).unwrap();
        assert!(south.day_length_hours(355) > south.day_length_hours(172));
    }

    #[test]
    fn solar_day_is_a_pure_function() {
        let s = SeasonalSolar::temperate_uk().unwrap();
        assert_eq!(s.solar_day(100).unwrap(), s.solar_day(100).unwrap());
    }
}
