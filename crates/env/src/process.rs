//! Seeded stochastic processes used to texture the light profiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::EnvError;

/// A discrete-time Ornstein-Uhlenbeck (mean-reverting) process, used for
/// cloud cover and similar slowly varying multiplicative factors.
///
/// ```
/// use eh_env::process::OrnsteinUhlenbeck;
///
/// let mut ou = OrnsteinUhlenbeck::new(0.0, 600.0, 0.4, 7)?;
/// let x = ou.step(1.0);
/// assert!(x.is_finite());
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    mean: f64,
    correlation_time: f64,
    sigma: f64,
    state: f64,
    rng: StdRng,
}

impl OrnsteinUhlenbeck {
    /// Creates a process reverting to `mean` with the given correlation
    /// time (seconds) and stationary standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive correlation time or negative sigma.
    pub fn new(mean: f64, correlation_time: f64, sigma: f64, seed: u64) -> Result<Self, EnvError> {
        if !(correlation_time.is_finite() && correlation_time > 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "correlation_time",
                value: correlation_time,
            });
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Self {
            mean,
            correlation_time,
            sigma,
            state: mean,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Advances the process by `dt` seconds and returns the new state.
    pub fn step(&mut self, dt: f64) -> f64 {
        let alpha = (-dt / self.correlation_time).exp();
        // Exact discretisation of the OU process.
        let noise_std = self.sigma * (1.0 - alpha * alpha).sqrt();
        let gauss: f64 = self.sample_standard_normal();
        self.state = self.mean + (self.state - self.mean) * alpha + noise_std * gauss;
        self.state
    }

    /// The current state without advancing.
    pub fn state(&self) -> f64 {
        self.state
    }

    fn sample_standard_normal(&mut self) -> f64 {
        // Box-Muller; both uniforms strictly in (0, 1].
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// A random telegraph process: switches between 0 and 1 with exponential
/// dwell times. Used for occupancy shadowing (someone leaning over the
/// desk) and door/blind events.
#[derive(Debug, Clone)]
pub struct RandomTelegraph {
    rate_up: f64,
    rate_down: f64,
    state: bool,
    rng: StdRng,
}

impl RandomTelegraph {
    /// Creates a telegraph with mean dwell `1/rate_up` seconds in the low
    /// state and `1/rate_down` seconds in the high state.
    ///
    /// # Errors
    ///
    /// Rejects non-positive rates.
    pub fn new(rate_up: f64, rate_down: f64, seed: u64) -> Result<Self, EnvError> {
        for (name, v) in [("rate_up", rate_up), ("rate_down", rate_down)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(EnvError::InvalidParameter { name, value: v });
            }
        }
        Ok(Self {
            rate_up,
            rate_down,
            state: false,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Advances by `dt` seconds and returns the (possibly flipped) state.
    pub fn step(&mut self, dt: f64) -> bool {
        let rate = if self.state {
            self.rate_down
        } else {
            self.rate_up
        };
        let p_flip = 1.0 - (-rate * dt).exp();
        if self.rng.gen::<f64>() < p_flip {
            self.state = !self.state;
        }
        self.state
    }

    /// The current state without advancing.
    pub fn state(&self) -> bool {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ou_validation() {
        assert!(OrnsteinUhlenbeck::new(0.0, 0.0, 1.0, 1).is_err());
        assert!(OrnsteinUhlenbeck::new(0.0, 1.0, -1.0, 1).is_err());
    }

    #[test]
    fn ou_is_deterministic_per_seed() {
        let run = |seed| {
            let mut ou = OrnsteinUhlenbeck::new(0.0, 10.0, 1.0, seed).unwrap();
            (0..100).map(|_| ou.step(1.0)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut ou = OrnsteinUhlenbeck::new(3.0, 5.0, 0.1, 42).unwrap();
        // Start far away.
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            sum += ou.step(1.0);
        }
        let avg = sum / n as f64;
        assert!((avg - 3.0).abs() < 0.1, "long-run mean = {avg}");
    }

    #[test]
    fn ou_zero_sigma_is_deterministic_decay() {
        let mut ou = OrnsteinUhlenbeck::new(0.0, 10.0, 0.0, 1).unwrap();
        // state starts at mean; stays exactly there.
        for _ in 0..10 {
            assert_eq!(ou.step(1.0), 0.0);
        }
    }

    #[test]
    fn telegraph_validation_and_flipping() {
        assert!(RandomTelegraph::new(0.0, 1.0, 1).is_err());
        let mut tg = RandomTelegraph::new(1.0, 1.0, 9).unwrap();
        let mut highs = 0;
        for _ in 0..10_000 {
            if tg.step(0.5) {
                highs += 1;
            }
        }
        // Symmetric rates: roughly half the time high.
        let frac = highs as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.1, "high fraction = {frac}");
    }

    #[test]
    fn telegraph_deterministic_per_seed() {
        let run = |seed| {
            let mut tg = RandomTelegraph::new(0.3, 0.7, seed).unwrap();
            (0..200).map(|_| tg.step(1.0)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }
}
