//! Regularly sampled time series.

use eh_units::Seconds;

use crate::error::EnvError;

/// A regularly sampled time series (illuminance traces, Voc logs, ...).
///
/// Values are unit-agnostic `f64`s; the producing function documents the
/// unit (profiles produce lux, the Voc conversion in downstream crates
/// produces volts).
///
/// ```
/// use eh_env::TimeSeries;
/// use eh_units::Seconds;
///
/// let s = TimeSeries::from_fn(Seconds::ZERO, Seconds::new(1.0), 10, |t| t.value() * 2.0)?;
/// assert_eq!(s.len(), 10);
/// assert_eq!(s.value_at(Seconds::new(4.5)), Some(9.0)); // linear interpolation
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: Seconds,
    dt: Seconds,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw samples.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive sampling interval or an empty sample set.
    pub fn new(start: Seconds, dt: Seconds, values: Vec<f64>) -> Result<Self, EnvError> {
        if !(dt.value().is_finite() && dt.value() > 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "dt",
                value: dt.value(),
            });
        }
        if values.is_empty() {
            return Err(EnvError::SeriesTooShort { have: 0, need: 1 });
        }
        Ok(Self { start, dt, values })
    }

    /// Samples a generator function at `n` regular instants.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive interval or `n == 0`.
    pub fn from_fn(
        start: Seconds,
        dt: Seconds,
        n: usize,
        mut f: impl FnMut(Seconds) -> f64,
    ) -> Result<Self, EnvError> {
        if n == 0 {
            return Err(EnvError::SeriesTooShort { have: 0, need: 1 });
        }
        let values = (0..n).map(|i| f(start + dt * i as f64)).collect();
        Self::new(start, dt, values)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for constructed series).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sampling interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Time of the first sample.
    pub fn start_time(&self) -> Seconds {
        self.start
    }

    /// Time of the last sample.
    pub fn end_time(&self) -> Seconds {
        self.start + self.dt * (self.values.len().saturating_sub(1)) as f64
    }

    /// Span from first to last sample.
    pub fn duration(&self) -> Seconds {
        self.end_time() - self.start
    }

    /// Raw sample access.
    pub fn sample(&self, i: usize) -> Option<f64> {
        self.values.get(i).copied()
    }

    /// The raw sample slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.start + self.dt * i as f64, v))
    }

    /// Linear interpolation at time `t`; `None` outside the series span.
    pub fn value_at(&self, t: Seconds) -> Option<f64> {
        let rel = (t - self.start).value() / self.dt.value();
        if rel < 0.0 || rel > (self.values.len() - 1) as f64 {
            return None;
        }
        let i = rel.floor() as usize;
        if i + 1 >= self.values.len() {
            return Some(self.values[i]);
        }
        let f = rel - i as f64;
        Some(self.values[i] * (1.0 - f) + self.values[i + 1] * f)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Applies a function to every sample, keeping the time base —
    /// how an illuminance trace becomes a Voc trace.
    #[must_use]
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Self {
        Self {
            start: self.start,
            dt: self.dt,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Extracts the samples whose index falls in `[from, to)`, rebased to
    /// start at time zero — how a multi-day trace is split into days.
    ///
    /// # Errors
    ///
    /// Rejects an empty or out-of-range window.
    pub fn slice_samples(&self, from: usize, to: usize) -> Result<Self, EnvError> {
        if from >= to || to > self.values.len() {
            return Err(EnvError::InvalidParameter {
                name: "slice_range",
                value: to as f64,
            });
        }
        Self::new(Seconds::ZERO, self.dt, self.values[from..to].to_vec())
    }

    /// Appends another series sampled at the same interval, shifting its
    /// time base to follow this one — how multi-day scenarios are built.
    ///
    /// # Errors
    ///
    /// Rejects a mismatched sampling interval.
    pub fn concat(&self, next: &TimeSeries) -> Result<Self, EnvError> {
        if (next.dt.value() - self.dt.value()).abs() > 1e-12 {
            return Err(EnvError::InvalidParameter {
                name: "dt_mismatch",
                value: next.dt.value(),
            });
        }
        let mut values = self.values.clone();
        values.extend_from_slice(&next.values);
        Self::new(self.start, self.dt, values)
    }

    /// Downsamples by an integer factor (keeping every `factor`-th
    /// sample).
    ///
    /// # Errors
    ///
    /// Rejects `factor == 0`.
    pub fn decimate(&self, factor: usize) -> Result<Self, EnvError> {
        if factor == 0 {
            return Err(EnvError::InvalidParameter {
                name: "factor",
                value: 0.0,
            });
        }
        Self::new(
            self.start,
            self.dt * factor as f64,
            self.values.iter().step_by(factor).copied().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::from_fn(Seconds::ZERO, Seconds::new(2.0), 11, |t| t.value()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(TimeSeries::new(Seconds::ZERO, Seconds::ZERO, vec![1.0]).is_err());
        assert!(TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), vec![]).is_err());
        assert!(TimeSeries::from_fn(Seconds::ZERO, Seconds::new(1.0), 0, |_| 0.0).is_err());
    }

    #[test]
    fn timing_accessors() {
        let s = ramp();
        assert_eq!(s.len(), 11);
        assert_eq!(s.dt(), Seconds::new(2.0));
        assert_eq!(s.start_time(), Seconds::ZERO);
        assert_eq!(s.end_time(), Seconds::new(20.0));
        assert_eq!(s.duration(), Seconds::new(20.0));
    }

    #[test]
    fn interpolation() {
        let s = ramp();
        assert_eq!(s.value_at(Seconds::new(4.0)), Some(4.0));
        assert_eq!(s.value_at(Seconds::new(5.0)), Some(5.0)); // between samples
        assert_eq!(s.value_at(Seconds::new(20.0)), Some(20.0));
        assert_eq!(s.value_at(Seconds::new(-0.1)), None);
        assert_eq!(s.value_at(Seconds::new(20.1)), None);
    }

    #[test]
    fn statistics() {
        let s = ramp();
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 20.0);
        assert!((s.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn map_preserves_time_base() {
        let s = ramp().map(|v| v * 10.0);
        assert_eq!(s.dt(), Seconds::new(2.0));
        assert_eq!(s.sample(3), Some(60.0));
    }

    #[test]
    fn slice_samples_rebases() {
        let s = ramp();
        let mid = s.slice_samples(2, 5).unwrap();
        assert_eq!(mid.len(), 3);
        assert_eq!(mid.start_time(), Seconds::ZERO);
        assert_eq!(mid.sample(0), Some(4.0));
        assert_eq!(mid.sample(2), Some(8.0));
        assert!(s.slice_samples(5, 5).is_err());
        assert!(s.slice_samples(0, 99).is_err());
    }

    #[test]
    fn concat_extends() {
        let a = ramp();
        let b = ramp();
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.len(), 22);
        assert_eq!(joined.sample(11), Some(0.0)); // second ramp restarts
    }

    #[test]
    fn decimate() {
        let s = ramp().decimate(2).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.dt(), Seconds::new(4.0));
        assert_eq!(s.sample(1), Some(4.0));
        assert!(ramp().decimate(0).is_err());
    }

    #[test]
    fn iter_yields_time_value_pairs() {
        let s = ramp();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs[2], (Seconds::new(4.0), 4.0));
        assert_eq!(pairs.len(), 11);
    }
}
