//! Artificial-light schedules.

use eh_units::{Lux, Seconds};

use crate::error::EnvError;

/// One on-interval of a lamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnInterval {
    /// Switch-on time (time of day).
    pub on: Seconds,
    /// Switch-off time.
    pub off: Seconds,
}

/// A lamp (or bank of luminaires) with an on/off schedule, a warm-up ramp
/// and its illuminance contribution at the sensor position.
///
/// ```
/// use eh_env::lamps::Lamp;
/// use eh_units::{Lux, Seconds};
///
/// let office = Lamp::new(Lux::new(400.0), Seconds::new(2.0))?
///     .with_interval(Seconds::from_hours(8.0), Seconds::from_hours(18.5))?;
/// assert!(office.illuminance(Seconds::from_hours(12.0)).value() > 399.0);
/// assert_eq!(office.illuminance(Seconds::from_hours(20.0)).value(), 0.0);
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lamp {
    level: Lux,
    warmup: Seconds,
    intervals: Vec<OnInterval>,
}

impl Lamp {
    /// Creates a lamp contributing `level` lux when fully warm, reaching
    /// it with a first-order ramp of time constant `warmup`.
    ///
    /// # Errors
    ///
    /// Rejects negative level or warm-up.
    pub fn new(level: Lux, warmup: Seconds) -> Result<Self, EnvError> {
        if !(level.value().is_finite() && level.value() >= 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "level",
                value: level.value(),
            });
        }
        if !(warmup.value().is_finite() && warmup.value() >= 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "warmup",
                value: warmup.value(),
            });
        }
        Ok(Self {
            level,
            warmup,
            intervals: Vec::new(),
        })
    }

    /// Adds an on-interval (builder style).
    ///
    /// # Errors
    ///
    /// Rejects `off ≤ on`.
    pub fn with_interval(mut self, on: Seconds, off: Seconds) -> Result<Self, EnvError> {
        if off.value() <= on.value() {
            return Err(EnvError::InvalidParameter {
                name: "off",
                value: off.value(),
            });
        }
        self.intervals.push(OnInterval { on, off });
        Ok(self)
    }

    /// The scheduled intervals.
    pub fn intervals(&self) -> &[OnInterval] {
        &self.intervals
    }

    /// The fully warm contribution level.
    pub fn level(&self) -> Lux {
        self.level
    }

    /// The lamp's illuminance contribution at time-of-day `t`.
    pub fn illuminance(&self, t: Seconds) -> Lux {
        for iv in &self.intervals {
            if t.value() >= iv.on.value() && t.value() < iv.off.value() {
                if self.warmup.value() <= 0.0 {
                    return self.level;
                }
                let since_on = t.value() - iv.on.value();
                let ramp = 1.0 - (-since_on / self.warmup.value()).exp();
                return self.level * ramp;
            }
        }
        Lux::ZERO
    }

    /// Whether the lamp is scheduled on at time-of-day `t`.
    pub fn is_on(&self, t: Seconds) -> bool {
        self.intervals
            .iter()
            .any(|iv| t.value() >= iv.on.value() && t.value() < iv.off.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office_lamp() -> Lamp {
        Lamp::new(Lux::new(400.0), Seconds::new(2.0))
            .unwrap()
            .with_interval(Seconds::from_hours(8.0), Seconds::from_hours(18.5))
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Lamp::new(Lux::new(-1.0), Seconds::ZERO).is_err());
        assert!(Lamp::new(Lux::new(100.0), Seconds::new(-1.0)).is_err());
        assert!(Lamp::new(Lux::new(100.0), Seconds::ZERO)
            .unwrap()
            .with_interval(Seconds::from_hours(9.0), Seconds::from_hours(9.0))
            .is_err());
    }

    #[test]
    fn off_outside_schedule() {
        let l = office_lamp();
        assert_eq!(l.illuminance(Seconds::from_hours(7.9)).value(), 0.0);
        assert_eq!(l.illuminance(Seconds::from_hours(18.5)).value(), 0.0);
        assert!(!l.is_on(Seconds::from_hours(20.0)));
        assert!(l.is_on(Seconds::from_hours(12.0)));
    }

    #[test]
    fn warmup_ramp() {
        let l = office_lamp();
        let just_on = l
            .illuminance(Seconds::from_hours(8.0) + Seconds::new(0.5))
            .value();
        let warm = l
            .illuminance(Seconds::from_hours(8.0) + Seconds::new(20.0))
            .value();
        assert!(just_on < warm);
        assert!((warm - 400.0).abs() < 0.1);
    }

    #[test]
    fn zero_warmup_is_instant() {
        let l = Lamp::new(Lux::new(250.0), Seconds::ZERO)
            .unwrap()
            .with_interval(Seconds::from_hours(1.0), Seconds::from_hours(2.0))
            .unwrap();
        assert_eq!(l.illuminance(Seconds::from_hours(1.0)).value(), 250.0);
    }

    #[test]
    fn multiple_intervals() {
        let l = Lamp::new(Lux::new(100.0), Seconds::ZERO)
            .unwrap()
            .with_interval(Seconds::from_hours(7.0), Seconds::from_hours(9.0))
            .unwrap()
            .with_interval(Seconds::from_hours(17.0), Seconds::from_hours(23.0))
            .unwrap();
        assert!(l.is_on(Seconds::from_hours(8.0)));
        assert!(!l.is_on(Seconds::from_hours(12.0)));
        assert!(l.is_on(Seconds::from_hours(22.0)));
        assert_eq!(l.intervals().len(), 2);
    }
}
