//! Eq. (2) of the paper: worst-case mean error of a sampled estimate.
//!
//! The paper asks: if the MPPT samples the open-circuit voltage only once
//! per period `p`, how wrong can the held estimate get between samples?
//! Eq. (2) answers with the mean over the whole log of the within-window
//! peak-to-peak excursion:
//!
//! ```text
//!        q−p
//!   Ē =   Σ   ( max{xₙ…xₙ₊ₚ₋₁} − min{xₙ…xₙ₊ₚ₋₁} ) / (q − p + 1)
//!        n=0
//! ```
//!
//! Applied to the 24-hour Voc logs this gave the paper 12.7 mV (desk) and
//! 24.1 mV (semi-mobile) for a 1-minute period — small enough that a
//! >60 s hold period costs under 1 % efficiency.

use std::collections::VecDeque;

use eh_units::Seconds;

use crate::error::EnvError;
use crate::series::TimeSeries;

/// Worst-case mean error (Eq. (2)) of sampling `series` once per `period`.
///
/// The window length in samples is `round(period / dt)`; the result is in
/// the series' own unit (volts for a Voc log).
///
/// # Errors
///
/// Returns [`EnvError::InvalidParameter`] for a period below one sample
/// interval, or [`EnvError::SeriesTooShort`] if the series has fewer
/// samples than one window.
///
/// ```
/// use eh_env::{sampling_error, TimeSeries};
/// use eh_units::Seconds;
///
/// // A 0.1 Hz sine sampled at 1 Hz: a 5 s window sees about half the swing.
/// let s = TimeSeries::from_fn(Seconds::ZERO, Seconds::new(1.0), 600,
///     |t| (t.value() * 0.1 * std::f64::consts::TAU).sin())?;
/// let e = sampling_error::worst_case_mean_error(&s, Seconds::new(5.0))?;
/// assert!(e > 0.5 && e < 2.0);
/// # Ok::<(), eh_env::EnvError>(())
/// ```
pub fn worst_case_mean_error(series: &TimeSeries, period: Seconds) -> Result<f64, EnvError> {
    let window = (period.value() / series.dt().value()).round() as usize;
    if window < 1 {
        return Err(EnvError::InvalidParameter {
            name: "period",
            value: period.value(),
        });
    }
    let n = series.len();
    if n < window {
        return Err(EnvError::SeriesTooShort {
            have: n,
            need: window,
        });
    }
    // Sliding-window max and min via monotonic deques: O(n) overall.
    let values = series.values();
    let mut max_dq: VecDeque<usize> = VecDeque::new();
    let mut min_dq: VecDeque<usize> = VecDeque::new();
    let mut sum = 0.0f64;
    let mut windows = 0usize;
    for i in 0..n {
        while max_dq.back().is_some_and(|&j| values[j] <= values[i]) {
            max_dq.pop_back();
        }
        max_dq.push_back(i);
        while min_dq.back().is_some_and(|&j| values[j] >= values[i]) {
            min_dq.pop_back();
        }
        min_dq.push_back(i);
        if i + 1 >= window {
            let left = i + 1 - window;
            while max_dq.front().is_some_and(|&j| j < left) {
                max_dq.pop_front();
            }
            while min_dq.front().is_some_and(|&j| j < left) {
                min_dq.pop_front();
            }
            sum += values[*max_dq.front().expect("window non-empty")]
                - values[*min_dq.front().expect("window non-empty")];
            windows += 1;
        }
    }
    Ok(sum / windows as f64)
}

/// One point of a period sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The sampling period evaluated.
    pub period: Seconds,
    /// The worst-case mean error Ē at that period.
    pub mean_error: f64,
}

/// Evaluates Eq. (2) across a set of candidate sampling periods — the
/// sweep a designer runs to pick the hold period.
///
/// # Errors
///
/// Propagates per-period errors from [`worst_case_mean_error`].
pub fn period_sweep(
    series: &TimeSeries,
    periods: impl IntoIterator<Item = Seconds>,
) -> Result<Vec<SweepPoint>, EnvError> {
    periods
        .into_iter()
        .map(|p| {
            Ok(SweepPoint {
                period: p,
                mean_error: worst_case_mean_error(series, p)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_of(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), values).unwrap()
    }

    #[test]
    fn constant_signal_has_zero_error() {
        let s = series_of(vec![5.0; 1000]);
        for p in [1.0, 10.0, 60.0] {
            assert_eq!(worst_case_mean_error(&s, Seconds::new(p)).unwrap(), 0.0);
        }
    }

    #[test]
    fn single_sample_window_is_zero() {
        let s = series_of((0..100).map(|i| i as f64).collect());
        // Window of one sample: max == min.
        assert_eq!(worst_case_mean_error(&s, Seconds::new(1.0)).unwrap(), 0.0);
    }

    #[test]
    fn ramp_error_scales_with_window() {
        // Unit-slope ramp: a window of w samples spans w−1 units.
        let s = series_of((0..1000).map(|i| i as f64).collect());
        let e10 = worst_case_mean_error(&s, Seconds::new(10.0)).unwrap();
        let e60 = worst_case_mean_error(&s, Seconds::new(60.0)).unwrap();
        assert!((e10 - 9.0).abs() < 1e-9, "e10 = {e10}");
        assert!((e60 - 59.0).abs() < 1e-9, "e60 = {e60}");
    }

    #[test]
    fn matches_naive_implementation() {
        // Pseudo-random-ish deterministic values.
        let values: Vec<f64> = (0..500)
            .map(|i| ((i * 7919 % 104729) as f64).sin() * 3.0 + (i as f64 * 0.01))
            .collect();
        let s = series_of(values.clone());
        for w in [2usize, 7, 33] {
            let fast = worst_case_mean_error(&s, Seconds::new(w as f64)).unwrap();
            let mut sum = 0.0;
            let mut count = 0;
            for n in 0..=(values.len() - w) {
                let win = &values[n..n + w];
                let mx = win.iter().cloned().fold(f64::MIN, f64::max);
                let mn = win.iter().cloned().fold(f64::MAX, f64::min);
                sum += mx - mn;
                count += 1;
            }
            let naive = sum / count as f64;
            assert!(
                (fast - naive).abs() < 1e-12,
                "window {w}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn error_monotone_in_period() {
        let values: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.05).sin() + 0.3 * (i as f64 * 0.013).cos())
            .collect();
        let s = series_of(values);
        let sweep = period_sweep(&s, [2.0, 5.0, 20.0, 100.0, 500.0].map(Seconds::new)).unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].mean_error >= pair[0].mean_error - 1e-12,
                "Ē must not decrease with period: {pair:?}"
            );
        }
    }

    #[test]
    fn invalid_inputs() {
        let s = series_of(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            worst_case_mean_error(&s, Seconds::new(0.2)),
            Err(EnvError::InvalidParameter { .. })
        ));
        assert!(matches!(
            worst_case_mean_error(&s, Seconds::new(10.0)),
            Err(EnvError::SeriesTooShort { .. })
        ));
    }
}
