//! A simple clear-sky solar illuminance model.
//!
//! The profiles need a plausible daylight curve — a sunrise ramp, a
//! midday plateau and a sunset — not an astronomical ephemeris, so the
//! model is a half-sine elevation raised to an atmospheric-attenuation
//! exponent, scaled to a peak illuminance.

use eh_units::{Lux, Seconds};

use crate::error::EnvError;

/// Clear-sky daylight model for one day.
///
/// ```
/// use eh_env::solar::SolarDay;
/// use eh_units::Seconds;
///
/// let day = SolarDay::uk_summer()?;
/// let noon = day.illuminance(Seconds::from_hours(13.0));
/// assert!(noon.value() > 50_000.0);
/// assert_eq!(day.illuminance(Seconds::from_hours(2.0)).value(), 0.0);
/// # Ok::<(), eh_env::EnvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolarDay {
    sunrise: Seconds,
    sunset: Seconds,
    peak: Lux,
    attenuation_exponent: f64,
}

impl SolarDay {
    /// Creates a solar day.
    ///
    /// # Errors
    ///
    /// Rejects `sunset ≤ sunrise`, non-positive peak illuminance, or a
    /// non-positive attenuation exponent.
    pub fn new(
        sunrise: Seconds,
        sunset: Seconds,
        peak: Lux,
        attenuation_exponent: f64,
    ) -> Result<Self, EnvError> {
        if sunset.value() <= sunrise.value() {
            return Err(EnvError::InvalidParameter {
                name: "sunset",
                value: sunset.value(),
            });
        }
        if !(peak.value().is_finite() && peak.value() > 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "peak",
                value: peak.value(),
            });
        }
        if !(attenuation_exponent.is_finite() && attenuation_exponent > 0.0) {
            return Err(EnvError::InvalidParameter {
                name: "attenuation_exponent",
                value: attenuation_exponent,
            });
        }
        Ok(Self {
            sunrise,
            sunset,
            peak,
            attenuation_exponent,
        })
    }

    /// A UK summer day (the paper's Southampton setting): sunrise 05:00,
    /// sunset 21:00, 90 klux clear-sky peak.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors [`SolarDay::new`].
    pub fn uk_summer() -> Result<Self, EnvError> {
        Self::new(
            Seconds::from_hours(5.0),
            Seconds::from_hours(21.0),
            Lux::new(90_000.0),
            1.3,
        )
    }

    /// A UK winter day: sunrise 08:00, sunset 16:00, 20 klux peak.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors [`SolarDay::new`].
    pub fn uk_winter() -> Result<Self, EnvError> {
        Self::new(
            Seconds::from_hours(8.0),
            Seconds::from_hours(16.0),
            Lux::new(20_000.0),
            1.3,
        )
    }

    /// Sunrise time.
    pub fn sunrise(&self) -> Seconds {
        self.sunrise
    }

    /// Sunset time.
    pub fn sunset(&self) -> Seconds {
        self.sunset
    }

    /// Daylight duration (sunset − sunrise).
    pub fn daylight(&self) -> Seconds {
        self.sunset - self.sunrise
    }

    /// Clear-sky peak illuminance at solar noon.
    pub fn peak(&self) -> Lux {
        self.peak
    }

    /// Normalised solar elevation factor in `[0, 1]` (half-sine over the
    /// daylight window).
    pub fn elevation_factor(&self, t: Seconds) -> f64 {
        let t = t.value();
        if t <= self.sunrise.value() || t >= self.sunset.value() {
            return 0.0;
        }
        let frac = (t - self.sunrise.value()) / (self.sunset.value() - self.sunrise.value());
        (std::f64::consts::PI * frac).sin()
    }

    /// Horizontal outdoor illuminance at time-of-day `t`.
    pub fn illuminance(&self, t: Seconds) -> Lux {
        self.peak * self.elevation_factor(t).powf(self.attenuation_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SolarDay::new(
            Seconds::from_hours(9.0),
            Seconds::from_hours(8.0),
            Lux::new(1000.0),
            1.0
        )
        .is_err());
        assert!(SolarDay::new(
            Seconds::from_hours(6.0),
            Seconds::from_hours(18.0),
            Lux::ZERO,
            1.0
        )
        .is_err());
        assert!(SolarDay::new(
            Seconds::from_hours(6.0),
            Seconds::from_hours(18.0),
            Lux::new(1000.0),
            0.0
        )
        .is_err());
    }

    #[test]
    fn dark_outside_daylight_window() {
        let day = SolarDay::uk_summer().unwrap();
        assert_eq!(day.illuminance(Seconds::from_hours(2.0)).value(), 0.0);
        assert_eq!(day.illuminance(Seconds::from_hours(23.0)).value(), 0.0);
        assert_eq!(day.illuminance(Seconds::from_hours(5.0)).value(), 0.0);
    }

    #[test]
    fn peaks_at_solar_noon() {
        let day = SolarDay::uk_summer().unwrap();
        let noon = day.illuminance(Seconds::from_hours(13.0)).value();
        assert!((noon - 90_000.0).abs() < 1.0);
        let morning = day.illuminance(Seconds::from_hours(8.0)).value();
        assert!(morning < noon);
        assert!(morning > 0.0);
    }

    #[test]
    fn symmetric_about_noon() {
        let day = SolarDay::uk_summer().unwrap();
        let a = day.illuminance(Seconds::from_hours(9.0)).value();
        let b = day.illuminance(Seconds::from_hours(17.0)).value();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn winter_dimmer_and_shorter() {
        let summer = SolarDay::uk_summer().unwrap();
        let winter = SolarDay::uk_winter().unwrap();
        assert!(
            winter.illuminance(Seconds::from_hours(12.0)).value()
                < summer.illuminance(Seconds::from_hours(13.0)).value()
        );
        assert!(
            winter.sunset().value() - winter.sunrise().value()
                < summer.sunset().value() - summer.sunrise().value()
        );
    }

    #[test]
    fn elevation_factor_bounded() {
        let day = SolarDay::uk_summer().unwrap();
        for h in 0..24 {
            let e = day.elevation_factor(Seconds::from_hours(h as f64));
            assert!((0.0..=1.0).contains(&e));
        }
    }
}
