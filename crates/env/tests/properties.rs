//! Property-based tests on environment invariants, especially the
//! Eq. (2) analyzer (the paper's core §II-B instrument).

use eh_env::{profiles, sampling_error, solar::SolarDay, TimeSeries};
use eh_units::{Lux, Seconds};
use proptest::prelude::*;

fn series(values: Vec<f64>) -> TimeSeries {
    TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), values).expect("valid series")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ē is non-negative and bounded by the global peak-to-peak range.
    #[test]
    fn eq2_bounded(values in proptest::collection::vec(-10.0..10.0f64, 10..300),
                   window in 2usize..9) {
        let s = series(values.clone());
        let e = sampling_error::worst_case_mean_error(&s, Seconds::new(window as f64))
            .expect("analysis succeeds");
        let global = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= global + 1e-12, "Ē {e} exceeds global range {global}");
    }

    /// Ē is invariant under a constant offset of the signal.
    #[test]
    fn eq2_shift_invariant(values in proptest::collection::vec(0.0..5.0f64, 20..200),
                           offset in -100.0..100.0f64) {
        let base = series(values.clone());
        let shifted = series(values.iter().map(|v| v + offset).collect());
        let e1 = sampling_error::worst_case_mean_error(&base, Seconds::new(5.0)).expect("ok");
        let e2 = sampling_error::worst_case_mean_error(&shifted, Seconds::new(5.0)).expect("ok");
        prop_assert!((e1 - e2).abs() < 1e-9);
    }

    /// Ē scales linearly with the signal's amplitude.
    #[test]
    fn eq2_scale_linear(values in proptest::collection::vec(-3.0..3.0f64, 20..200),
                        gain in 0.1..10.0f64) {
        let base = series(values.clone());
        let scaled = series(values.iter().map(|v| v * gain).collect());
        let e1 = sampling_error::worst_case_mean_error(&base, Seconds::new(4.0)).expect("ok");
        let e2 = sampling_error::worst_case_mean_error(&scaled, Seconds::new(4.0)).expect("ok");
        prop_assert!((e2 - e1 * gain).abs() < 1e-9 * (1.0 + e2.abs()));
    }

    /// Ē never decreases when the window widens (more excursion fits in).
    #[test]
    fn eq2_monotone_in_window(values in proptest::collection::vec(-5.0..5.0f64, 40..200)) {
        let s = series(values);
        let mut prev = 0.0;
        for w in [2.0, 4.0, 8.0, 16.0] {
            let e = sampling_error::worst_case_mean_error(&s, Seconds::new(w)).expect("ok");
            prop_assert!(e >= prev - 1e-12, "Ē({w}) = {e} < {prev}");
            prev = e;
        }
    }

    /// Decimation preserves sample values at the kept indices.
    #[test]
    fn decimate_keeps_values(values in proptest::collection::vec(-1e3..1e3f64, 10..100),
                             factor in 1usize..6) {
        let s = series(values.clone());
        let d = s.decimate(factor).expect("valid factor");
        for (i, v) in d.values().iter().enumerate() {
            prop_assert_eq!(*v, values[i * factor]);
        }
    }

    /// concat's length is the sum and slicing it back recovers the parts.
    #[test]
    fn concat_slice_round_trip(a in proptest::collection::vec(0.0..10.0f64, 2..50),
                               b in proptest::collection::vec(0.0..10.0f64, 2..50)) {
        let sa = series(a.clone());
        let sb = series(b.clone());
        let joined = sa.concat(&sb).expect("same dt");
        prop_assert_eq!(joined.len(), a.len() + b.len());
        let back = joined.slice_samples(a.len(), a.len() + b.len()).expect("in range");
        prop_assert_eq!(back.values(), &b[..]);
    }

    /// value_at at exact sample instants returns the sample.
    #[test]
    fn value_at_hits_samples(values in proptest::collection::vec(-1e2..1e2f64, 2..100)) {
        let s = series(values.clone());
        for (i, v) in values.iter().enumerate() {
            let got = s.value_at(Seconds::new(i as f64)).expect("in range");
            prop_assert!((got - v).abs() < 1e-12);
        }
    }

    /// Solar illuminance is non-negative, bounded by the peak, and zero
    /// outside the daylight window.
    #[test]
    fn solar_bounds(hour in 0.0..24.0f64) {
        let day = SolarDay::uk_summer().expect("valid constants");
        let lux = day.illuminance(Seconds::from_hours(hour));
        prop_assert!(lux.value() >= 0.0);
        prop_assert!(lux.value() <= 90_000.0 + 1e-9);
        if !(5.0..=21.0).contains(&hour) {
            prop_assert_eq!(lux.value(), 0.0);
        }
    }

    /// Every profile stays non-negative and below physical full daylight,
    /// whatever the seed.
    #[test]
    fn profiles_physical(seed in 0u64..1000) {
        let office = profiles::office_desk_mixed(seed);
        prop_assert!(office.min() >= 0.0);
        prop_assert!(office.max() < 10_000.0);
        let mobile = profiles::semi_mobile_friday(seed);
        prop_assert!(mobile.min() >= 0.0);
        prop_assert!(mobile.max() < 100_000.0);
    }

    /// Constant traces have zero Eq. (2) error at any period.
    #[test]
    fn eq2_constant_is_zero(level in -50.0..50.0f64, window in 2usize..20) {
        let s = profiles::constant(Lux::new(level.abs()), Seconds::new(100.0));
        let e = sampling_error::worst_case_mean_error(&s, Seconds::new(window as f64))
            .expect("ok");
        prop_assert_eq!(e, 0.0);
    }
}
