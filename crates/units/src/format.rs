//! SI-prefixed formatting of raw values.

/// Formats `value` with an SI prefix and the given unit symbol.
///
/// The mantissa is printed with up to four significant digits and
/// trailing zeros trimmed, matching the precision the paper reports
/// (e.g. `4.978 V`, `7.6 µA`, `39 ms`).
///
/// # Examples
///
/// ```
/// use eh_units::format_si;
/// assert_eq!(format_si(7.6e-6, "A"), "7.6 µA");
/// assert_eq!(format_si(0.039, "s"), "39 ms");
/// assert_eq!(format_si(0.0, "V"), "0 V");
/// assert_eq!(format_si(-2.5e6, "Ω"), "-2.5 MΩ");
/// ```
pub fn format_si(value: f64, symbol: &str) -> String {
    if value == 0.0 {
        return format!("0 {symbol}");
    }
    if !value.is_finite() {
        return format!("{value} {symbol}");
    }
    const PREFIXES: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| mag >= *s * 0.9995)
        .copied()
        .unwrap_or((1e-12, "p"));
    let scaled = value / scale;
    let mut s = format!("{scaled:.4}");
    // Trim to at most 4 significant digits, then trailing zeros.
    if let Some(dot) = s.find('.') {
        let int_part = s[..dot].trim_start_matches('-');
        // A bare leading zero is not a significant digit.
        let int_digits = if int_part == "0" { 0 } else { int_part.len() };
        let keep = 4usize.saturating_sub(int_digits);
        let end = dot + if keep == 0 { 0 } else { keep + 1 };
        if end < s.len() {
            s.truncate(end);
        }
        if s.contains('.') {
            while s.ends_with('0') {
                s.pop();
            }
            if s.ends_with('.') {
                s.pop();
            }
        }
    }
    format!("{s} {prefix}{symbol}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_units() {
        assert_eq!(format_si(3.3, "V"), "3.3 V");
        assert_eq!(format_si(1.0, "V"), "1 V");
        assert_eq!(format_si(4.978, "V"), "4.978 V");
    }

    #[test]
    fn small_values() {
        assert_eq!(format_si(42e-6, "A"), "42 µA");
        assert_eq!(format_si(1.58e-12, "A"), "1.58 pA");
        assert_eq!(format_si(100e-9, "F"), "100 nF");
        assert_eq!(format_si(12.7e-3, "V"), "12.7 mV");
    }

    #[test]
    fn large_values() {
        assert_eq!(format_si(10e6, "Ω"), "10 MΩ");
        assert_eq!(format_si(4.7e3, "Ω"), "4.7 kΩ");
        assert_eq!(format_si(2.5e9, "Hz"), "2.5 GHz");
    }

    #[test]
    fn negatives_and_zero() {
        assert_eq!(format_si(0.0, "W"), "0 W");
        assert_eq!(format_si(-39e-3, "s"), "-39 ms");
    }

    #[test]
    fn sub_pico_clamps_to_pico() {
        assert_eq!(format_si(5e-15, "A"), "0.005 pA");
    }

    #[test]
    fn rounding_boundary() {
        // 0.9996 m rounds up into the base band rather than printing 999.6 m.
        assert_eq!(format_si(0.9996, "V"), "0.9996 V");
        assert_eq!(format_si(999.4, "V"), "999.4 V");
    }

    #[test]
    fn non_finite() {
        assert_eq!(format_si(f64::INFINITY, "V"), "inf V");
    }
}
