//! Temperature quantities with explicit scale conversions.

use std::fmt;
use std::ops::{Add, Sub};

/// Absolute temperature in kelvin.
///
/// The PV diode model works in kelvin; user-facing configuration usually
/// uses [`Celsius`].
///
/// ```
/// use eh_units::{Celsius, Kelvin};
/// let t = Celsius::new(25.0).to_kelvin();
/// assert!((t.value() - 298.15).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Standard reference temperature for PV models (25 °C).
    pub const STC: Self = Self(298.15);

    /// Creates an absolute temperature.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw kelvin value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - 273.15)
    }
}

impl Default for Kelvin {
    fn default() -> Self {
        Self::STC
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} K", self.0)
    }
}

impl Add<f64> for Kelvin {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self(self.0 + rhs)
    }
}

impl Sub<f64> for Kelvin {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self(self.0 - rhs)
    }
}

/// Temperature on the Celsius scale.
///
/// ```
/// use eh_units::Celsius;
/// let ambient = Celsius::new(21.0);
/// assert_eq!(format!("{ambient}"), "21.00 °C");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a Celsius temperature.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw Celsius value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the kelvin scale.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.0)
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_conversion() {
        let c = Celsius::new(21.5);
        let back = c.to_kelvin().to_celsius();
        assert!((back.value() - 21.5).abs() < 1e-12);
    }

    #[test]
    fn stc_is_25c() {
        assert!((Kelvin::STC.to_celsius().value() - 25.0).abs() < 1e-12);
        assert_eq!(Kelvin::default(), Kelvin::STC);
    }

    #[test]
    fn from_impls() {
        let k: Kelvin = Celsius::new(0.0).into();
        assert!((k.value() - 273.15).abs() < 1e-12);
        let c: Celsius = Kelvin::new(373.15).into();
        assert!((c.value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn offset_arithmetic() {
        let k = Kelvin::STC + 10.0;
        assert!((k.value() - 308.15).abs() < 1e-12);
        let k2 = k - 10.0;
        assert_eq!(k2, Kelvin::STC);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Kelvin::new(300.0)), "300.00 K");
        assert_eq!(format!("{}", Celsius::new(-5.25)), "-5.25 °C");
    }
}
