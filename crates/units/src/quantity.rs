//! Scalar quantity newtypes and their intrinsic operations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::format::format_si;

/// Defines a scalar physical quantity newtype with the full set of
/// intra-unit arithmetic, scalar scaling, ordering helpers and SI-prefixed
/// `Display`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Creates a quantity from a value expressed in milli-units.
            #[inline]
            pub fn from_milli(value: f64) -> Self {
                Self(value * 1e-3)
            }

            /// Creates a quantity from a value expressed in micro-units.
            #[inline]
            pub fn from_micro(value: f64) -> Self {
                Self(value * 1e-6)
            }

            /// Creates a quantity from a value expressed in nano-units.
            #[inline]
            pub fn from_nano(value: f64) -> Self {
                Self(value * 1e-9)
            }

            /// Creates a quantity from a value expressed in pico-units.
            #[inline]
            pub fn from_pico(value: f64) -> Self {
                Self(value * 1e-12)
            }

            /// Creates a quantity from a value expressed in kilo-units.
            #[inline]
            pub fn from_kilo(value: f64) -> Self {
                Self(value * 1e3)
            }

            /// Creates a quantity from a value expressed in mega-units.
            #[inline]
            pub fn from_mega(value: f64) -> Self {
                Self(value * 1e6)
            }

            /// Returns the raw value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the value expressed in milli-units.
            #[inline]
            pub fn as_milli(self) -> f64 {
                self.0 * 1e3
            }

            /// Returns the value expressed in micro-units.
            #[inline]
            pub fn as_micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Returns the value expressed in nano-units.
            #[inline]
            pub fn as_nano(self) -> f64 {
                self.0 * 1e9
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (delegates to [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is NaN.
            #[inline]
            pub fn is_nan(self) -> bool {
                self.0.is_nan()
            }

            /// The unit symbol, e.g. `"V"`.
            pub const SYMBOL: &'static str = $symbol;
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&format_si(self.0, $symbol))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    ///
    /// ```
    /// use eh_units::Volts;
    /// let voc = Volts::new(4.978);
    /// assert_eq!(format!("{voc}"), "4.978 V");
    /// ```
    Volts,
    "V"
);

quantity!(
    /// Electric current in amperes.
    ///
    /// ```
    /// use eh_units::Amps;
    /// let quiescent = Amps::from_micro(8.0);
    /// assert_eq!(format!("{quiescent}"), "8 µA");
    /// ```
    Amps,
    "A"
);

quantity!(
    /// Power in watts.
    ///
    /// ```
    /// use eh_units::Watts;
    /// let p = Watts::from_micro(126.3);
    /// assert_eq!(format!("{p}"), "126.3 µW");
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Electrical resistance in ohms.
    ///
    /// ```
    /// use eh_units::Ohms;
    /// let r2 = Ohms::from_mega(10.0);
    /// assert_eq!(format!("{r2}"), "10 MΩ");
    /// ```
    Ohms,
    "Ω"
);

quantity!(
    /// Capacitance in farads.
    ///
    /// ```
    /// use eh_units::Farads;
    /// let hold = Farads::from_nano(100.0);
    /// assert_eq!(format!("{hold}"), "100 nF");
    /// ```
    Farads,
    "F"
);

quantity!(
    /// Illuminance in lux.
    ///
    /// ```
    /// use eh_units::Lux;
    /// let office = Lux::new(500.0);
    /// assert_eq!(format!("{office}"), "500 lx");
    /// ```
    Lux,
    "lx"
);

quantity!(
    /// Time in seconds.
    ///
    /// ```
    /// use eh_units::Seconds;
    /// let hold_period = Seconds::new(69.0);
    /// assert_eq!(format!("{hold_period}"), "69 s");
    /// ```
    Seconds,
    "s"
);

quantity!(
    /// Frequency in hertz.
    ///
    /// ```
    /// use eh_units::Hertz;
    /// let f = Hertz::new(50.0);
    /// assert_eq!(format!("{f}"), "50 Hz");
    /// ```
    Hertz,
    "Hz"
);

quantity!(
    /// Energy in joules.
    ///
    /// ```
    /// use eh_units::Joules;
    /// let day = Joules::new(4.3);
    /// assert_eq!(format!("{day}"), "4.3 J");
    /// ```
    Joules,
    "J"
);

quantity!(
    /// Electric charge in coulombs.
    ///
    /// ```
    /// use eh_units::Coulombs;
    /// let q = Coulombs::from_micro(520.0);
    /// assert_eq!(format!("{q}"), "520 µC");
    /// ```
    Coulombs,
    "C"
);

impl Seconds {
    /// Creates a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Creates a duration from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// Returns the value expressed in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// Returns the value expressed in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }
}

/// A dimensionless ratio, e.g. an efficiency or the FOCV factor `k`.
///
/// ```
/// use eh_units::Ratio;
/// let k = Ratio::new(0.596);
/// assert!((k.as_percent() - 59.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Self = Self(0.0);
    /// The unit ratio (100 %).
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio from a raw fraction (1.0 == 100 %).
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Creates a ratio from a percentage value.
    #[inline]
    pub fn from_percent(pct: f64) -> Self {
        Self(pct / 100.0)
    }

    /// Returns the raw fraction.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the percentage representation.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Clamps into `[0, 1]`.
    #[inline]
    pub fn clamp_unit(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.as_percent())
    }
}

impl Mul<f64> for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(Volts::from_milli(1500.0), Volts::new(1.5));
        assert_eq!(Amps::from_micro(42.0).as_micro(), 42.0);
        assert!((Ohms::from_mega(2.2).value() - 2.2e6).abs() < 1e-6);
        assert!((Farads::from_pico(47.0).value() - 47e-12).abs() < 1e-24);
        assert_eq!(Seconds::from_minutes(1.0), Seconds::new(60.0));
        assert_eq!(Seconds::from_hours(24.0).as_hours(), 24.0);
    }

    #[test]
    fn arithmetic_within_unit() {
        let a = Volts::new(3.0);
        let b = Volts::new(1.5);
        assert_eq!(a + b, Volts::new(4.5));
        assert_eq!(a - b, Volts::new(1.5));
        assert_eq!(-a, Volts::new(-3.0));
        assert_eq!(a * 2.0, Volts::new(6.0));
        assert_eq!(2.0 * a, Volts::new(6.0));
        assert_eq!(a / 2.0, Volts::new(1.5));
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn assign_ops() {
        let mut v = Volts::new(1.0);
        v += Volts::new(0.5);
        v -= Volts::new(0.25);
        v *= 4.0;
        v /= 2.0;
        assert!((v.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = (0..10).map(|i| Joules::new(i as f64)).sum();
        assert_eq!(total, Joules::new(45.0));
    }

    #[test]
    fn comparisons_and_clamp() {
        let a = Lux::new(200.0);
        let b = Lux::new(5000.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.min(a), a);
        assert_eq!(Lux::new(9999.0).clamp(a, b), b);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn ratio_percent() {
        let k = Ratio::from_percent(59.6);
        assert!((k.value() - 0.596).abs() < 1e-12);
        assert_eq!(format!("{k}"), "59.60%");
        assert_eq!(Ratio::new(1.7).clamp_unit(), Ratio::ONE);
        assert_eq!(Ratio::new(-0.2).clamp_unit(), Ratio::ZERO);
        assert_eq!((Ratio::new(0.5) * Ratio::new(0.5)).value(), 0.25);
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Volts::new(f64::NAN).is_nan());
        assert!(!Volts::new(f64::INFINITY).is_finite());
        assert!(Volts::new(1.0).is_finite());
    }
}
