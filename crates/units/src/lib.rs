//! Typed physical quantities for the energy-harvesting MPPT reproduction.
//!
//! Every quantity that crosses a module boundary in this workspace is a
//! dedicated newtype over `f64` ([`Volts`], [`Amps`], [`Watts`], [`Lux`],
//! ...) so the compiler catches unit confusion (C-NEWTYPE). Quantities
//! support the physically meaningful arithmetic — `Volts * Amps = Watts`,
//! `Watts * Seconds = Joules`, `Volts / Ohms = Amps`, and so on — and
//! format themselves with SI prefixes.
//!
//! # Examples
//!
//! ```
//! use eh_units::{Volts, Amps, Watts, Seconds};
//!
//! let v = Volts::new(3.3);
//! let i = Amps::from_micro(7.6);
//! let p: Watts = v * i;
//! assert!((p.value() - 25.08e-6).abs() < 1e-12);
//! assert_eq!(format!("{p}"), "25.08 µW");
//!
//! let e = p * Seconds::new(60.0);
//! assert!((e.value() - 1.5048e-3).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod ops;
mod quantity;
mod temperature;

pub use format::format_si;
pub use quantity::{
    Amps, Coulombs, Farads, Hertz, Joules, Lux, Ohms, Ratio, Seconds, Volts, Watts,
};
pub use temperature::{Celsius, Kelvin};

/// Boltzmann constant over elementary charge, in volts per kelvin.
///
/// Used by the PV diode model to compute the thermal voltage
/// `Vt = K_OVER_Q * T`.
pub const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Thermal voltage at a given absolute temperature.
///
/// # Examples
///
/// ```
/// use eh_units::{thermal_voltage, Kelvin};
/// let vt = thermal_voltage(Kelvin::new(300.0));
/// assert!((vt.value() - 0.025852).abs() < 1e-5);
/// ```
pub fn thermal_voltage(t: Kelvin) -> Volts {
    Volts::new(K_OVER_Q * t.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_room_temperature() {
        let vt = thermal_voltage(Celsius::new(25.0).to_kelvin());
        assert!((vt.value() - 0.02569).abs() < 2e-4, "vt = {vt}");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Volts>();
        assert_send_sync::<Amps>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Lux>();
        assert_send_sync::<Seconds>();
        assert_send_sync::<Kelvin>();
    }
}
