//! Cross-unit arithmetic: the physically meaningful products and quotients.

use std::ops::{Div, Mul};

use crate::quantity::{
    Amps, Coulombs, Farads, Hertz, Joules, Lux, Ohms, Ratio, Seconds, Volts, Watts,
};

/// Defines `Lhs * Rhs = Out` together with the commuted form.
macro_rules! product {
    ($lhs:ty, $rhs:ty, $out:ty) => {
        impl Mul<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $rhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }

        impl Mul<$lhs> for $rhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $lhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }
    };
}

/// Defines `Num / Den = Out`.
macro_rules! quotient {
    ($num:ty, $den:ty, $out:ty) => {
        impl Div<$den> for $num {
            type Output = $out;
            #[inline]
            fn div(self, rhs: $den) -> $out {
                <$out>::new(self.value() / rhs.value())
            }
        }
    };
}

// Power and energy.
product!(Volts, Amps, Watts); // P = V·I
product!(Watts, Seconds, Joules); // E = P·t
quotient!(Joules, Seconds, Watts); // P = E/t
quotient!(Joules, Watts, Seconds); // t = E/P
quotient!(Watts, Volts, Amps); // I = P/V
quotient!(Watts, Amps, Volts); // V = P/I

// Ohm's law.
quotient!(Volts, Ohms, Amps); // I = V/R
quotient!(Volts, Amps, Ohms); // R = V/I
product!(Amps, Ohms, Volts); // V = I·R

// Charge.
product!(Amps, Seconds, Coulombs); // Q = I·t
quotient!(Coulombs, Seconds, Amps); // I = Q/t
quotient!(Coulombs, Amps, Seconds); // t = Q/I
quotient!(Coulombs, Volts, Farads); // C = Q/V
quotient!(Coulombs, Farads, Volts); // V = Q/C
product!(Farads, Volts, Coulombs); // Q = C·V

// RC time constant.
product!(Ohms, Farads, Seconds); // τ = R·C

// Energy stored on a capacitor uses E = ½·C·V², via `Farads * Volts * Volts`.
impl Mul<Volts> for Coulombs {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Volts) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Coulombs> for Volts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Coulombs) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

// Frequency / period duality.
impl Hertz {
    /// Returns the period `1/f`.
    ///
    /// ```
    /// use eh_units::{Hertz, Seconds};
    /// assert_eq!(Hertz::new(50.0).period(), Seconds::new(0.02));
    /// ```
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Seconds {
    /// Returns the frequency `1/t` of a period.
    ///
    /// ```
    /// use eh_units::{Hertz, Seconds};
    /// assert_eq!(Seconds::new(0.02).frequency(), Hertz::new(50.0));
    /// ```
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

// Ratio scales any quantity.
macro_rules! ratio_scales {
    ($($q:ty),*) => {
        $(
            impl Mul<Ratio> for $q {
                type Output = $q;
                #[inline]
                fn mul(self, rhs: Ratio) -> $q {
                    <$q>::new(self.value() * rhs.value())
                }
            }

            impl Mul<$q> for Ratio {
                type Output = $q;
                #[inline]
                fn mul(self, rhs: $q) -> $q {
                    <$q>::new(self.value() * rhs.value())
                }
            }
        )*
    };
}

ratio_scales!(Volts, Amps, Watts, Joules, Seconds, Coulombs, Lux);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lux;

    #[test]
    fn ohms_law_triangle() {
        let v = Volts::new(3.3);
        let r = Ohms::from_kilo(10.0);
        let i: Amps = v / r;
        assert!((i.as_micro() - 330.0).abs() < 1e-9);
        assert!(((i * r) - v).abs() < Volts::new(1e-12));
        assert!(((v / i).value() - r.value()).abs() < 1e-6);
    }

    #[test]
    fn power_energy_chain() {
        let p: Watts = Volts::new(3.3) * Amps::from_micro(7.6);
        let e: Joules = p * Seconds::from_hours(24.0);
        // 25.08 µW over a day ≈ 2.167 J
        assert!((e.value() - 2.1669e0).abs() < 1e-3, "e = {e}");
        let back: Watts = e / Seconds::from_hours(24.0);
        assert!((back.value() - p.value()).abs() < 1e-18);
        let t: Seconds = e / p;
        assert!((t.as_hours() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn charge_and_capacitance() {
        let q: Coulombs = Amps::from_micro(42.0) * Seconds::new(10.0);
        assert!((q.as_micro() - 420.0).abs() < 1e-9);
        let c: Farads = q / Volts::new(3.0);
        assert!((c.as_micro() - 140.0).abs() < 1e-9);
        let v: Volts = q / c;
        assert!((v.value() - 3.0).abs() < 1e-12);
        let q2: Coulombs = c * Volts::new(3.0);
        assert!((q2.value() - q.value()).abs() < 1e-15);
    }

    #[test]
    fn rc_time_constant() {
        let tau: Seconds = Ohms::from_mega(10.0) * Farads::from_micro(1.0);
        assert!((tau.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_duality() {
        let f = Hertz::new(1.0 / 69.0);
        assert!((f.period().value() - 69.0).abs() < 1e-9);
        assert!((Seconds::new(69.0).frequency().value() - f.value()).abs() < 1e-12);
    }

    #[test]
    fn ratio_scaling() {
        let voc = Volts::new(5.44);
        let held = voc * Ratio::new(0.596) * Ratio::new(0.5);
        assert!((held.value() - 1.621).abs() < 1e-3);
        let p = Ratio::from_percent(85.0) * Watts::from_micro(100.0);
        assert!((p.as_micro() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn display_examples() {
        let i: Amps = Volts::new(5.0) / Ohms::from_mega(5.0);
        assert_eq!(format!("{i}"), "1 µA");
        assert_eq!(format!("{}", Lux::new(200.0)), "200 lx");
    }
}
