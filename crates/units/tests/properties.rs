//! Property-based tests for unit arithmetic invariants.

use eh_units::{format_si, Amps, Coulombs, Farads, Joules, Ohms, Ratio, Seconds, Volts, Watts};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-9..1e9f64
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        prop_assert_eq!(Volts::new(a) + Volts::new(b), Volts::new(b) + Volts::new(a));
    }

    #[test]
    fn subtraction_inverts_addition(a in finite(), b in finite()) {
        let s = Volts::new(a) + Volts::new(b) - Volts::new(b);
        prop_assert!((s.value() - a).abs() <= 1e-6 * (1.0 + a.abs() + b.abs()));
    }

    #[test]
    fn power_product_commutes(v in finite(), i in finite()) {
        let p1: Watts = Volts::new(v) * Amps::new(i);
        let p2: Watts = Amps::new(i) * Volts::new(v);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn ohms_law_round_trip(v in positive(), r in positive()) {
        let i: Amps = Volts::new(v) / Ohms::new(r);
        let back: Volts = i * Ohms::new(r);
        prop_assert!((back.value() - v).abs() <= 1e-9 * v.abs().max(1.0));
    }

    #[test]
    fn energy_round_trip(p in positive(), t in positive()) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back: Watts = e / Seconds::new(t);
        prop_assert!((back.value() - p).abs() <= 1e-9 * p.abs().max(1.0));
    }

    #[test]
    fn charge_round_trip(c in positive(), v in positive()) {
        let q: Coulombs = Farads::new(c) * Volts::new(v);
        let back: Volts = q / Farads::new(c);
        prop_assert!((back.value() - v).abs() <= 1e-9 * v.abs().max(1.0));
    }

    #[test]
    fn self_division_is_one(v in positive()) {
        prop_assert!((Volts::new(v) / Volts::new(v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_scaling_bounded(v in positive(), k in 0.0..1.0f64) {
        let scaled = Volts::new(v) * Ratio::new(k);
        prop_assert!(scaled.value() <= v);
        prop_assert!(scaled.value() >= 0.0);
    }

    #[test]
    fn milli_micro_consistency(x in positive()) {
        let a = Amps::from_milli(x);
        let b = Amps::from_micro(x * 1000.0);
        prop_assert!((a.value() - b.value()).abs() <= 1e-12 * a.value().abs().max(1e-12));
    }

    #[test]
    fn format_never_panics_and_mentions_symbol(x in -1e15..1e15f64) {
        let s = format_si(x, "V");
        prop_assert!(s.ends_with('V'));
    }

    #[test]
    fn ordering_consistent_with_values(a in finite(), b in finite()) {
        prop_assert_eq!(Seconds::new(a) < Seconds::new(b), a < b);
    }

    #[test]
    fn min_max_partition(a in finite(), b in finite()) {
        let lo = Volts::new(a).min(Volts::new(b));
        let hi = Volts::new(a).max(Volts::new(b));
        prop_assert!(lo <= hi);
        prop_assert!((lo.value() + hi.value() - a - b).abs() < 1e-6 * (1.0 + a.abs() + b.abs()));
    }
}
