//! End-to-end service tests over real sockets: cache byte-identity,
//! single-flight coalescing, streaming, error statuses, overload
//! shedding and graceful shutdown.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

use eh_serve::{metrics::names, Json, Op, ServeConfig, Server, WhatIfRequest};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "eh-serve-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ))
}

fn test_server(tag: &str) -> Server {
    let mut cfg = ServeConfig::default_local();
    cfg.http_workers = 4;
    cfg.sim_workers = 2;
    cfg.spill_dir = scratch_dir(tag);
    Server::spawn(cfg).expect("server spawns")
}

/// A parsed response: status, headers (lowercased names), body text
/// (chunked transfer decoded when present).
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).expect("write head");
    conn.write_all(body.as_bytes()).expect("write body");
    conn.flush().expect("flush");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        decode_chunked(body)
    } else {
        body.to_owned()
    };
    Response {
        status,
        headers,
        body,
    }
}

fn decode_chunked(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..]
            .strip_prefix("\r\n")
            .expect("chunk data terminator");
    }
}

#[test]
fn health_metrics_and_unknown_routes() {
    let server = test_server("routes");
    let addr = server.addr();

    let health = exchange(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"ok\":true}");

    let metrics = exchange(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    let parsed = Json::parse(&metrics.body).expect("metrics body is JSON");
    assert_eq!(
        parsed.get("service").and_then(Json::as_str),
        Some("eh-serve")
    );

    assert_eq!(exchange(addr, "GET", "/nope", "").status, 404);
    assert_eq!(exchange(addr, "DELETE", "/whatif", "").status, 405);
    assert_eq!(exchange(addr, "POST", "/whatif", "{not json").status, 400);
    assert_eq!(
        exchange(addr, "POST", "/whatif", r#"{"nodes":0}"#).status,
        400
    );
    assert_eq!(
        exchange(addr, "POST", "/whatif/stream", r#"{"nodes":4,"obs":true}"#).status,
        422
    );
    server.shutdown();
}

#[test]
fn cached_response_is_byte_identical_to_the_cold_one() {
    let server = test_server("cache");
    let addr = server.addr();
    let body = r#"{"nodes":10,"seed":42}"#;

    let cold = exchange(addr, "POST", "/whatif", body);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    // Different spelling of the same request: whitespace, key order,
    // explicit defaults — must hit the cache.
    let respelled = r#"{ "seed" : 42, "nodes" : 1e1, "tracker": "focv" }"#;
    let warm = exchange(addr, "POST", "/whatif", respelled);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(
        warm.body, cold.body,
        "cached bytes must equal cold bytes exactly"
    );
    assert_eq!(warm.header("x-request-hash"), cold.header("x-request-hash"));

    let m = server.metrics();
    assert_eq!(m.counter(names::CACHE_HITS), 1);
    assert_eq!(m.counter(names::CACHE_MISSES), 1);
    assert_eq!(m.counter(names::SF_LEADER), 1);

    // The /metrics endpoint surfaces the same counters.
    let rendered = exchange(addr, "GET", "/metrics", "").body;
    assert!(rendered.contains("\"serve.cache.hits\":1"), "{rendered}");
    server.shutdown();
}

#[test]
fn whatif_matches_a_direct_fleet_run() {
    let server = test_server("direct");
    let body = r#"{"nodes":8,"seed":7,"tracker":"oracle"}"#;
    let response = exchange(server.addr(), "POST", "/whatif", body);
    assert_eq!(response.status, 200);
    let report = Json::parse(&response.body).unwrap();
    let served_p50 = report
        .get("report")
        .and_then(|r| r.get("net_j"))
        .and_then(|p| p.get("p50"))
        .and_then(Json::as_f64)
        .expect("served median");

    // The same request computed directly through the fleet layer.
    let req = WhatIfRequest::from_json(Op::WhatIf, &Json::parse(body).unwrap(), 10_000).unwrap();
    let spec = req.to_spec().unwrap();
    let direct = eh_fleet::FleetRunner::new(1)
        .with_shard_size(req.shard_size)
        .run_engine(&spec, req.tracker, req.engine)
        .unwrap();
    let expected = direct.net_energy_percentiles().unwrap().p50;
    assert_eq!(
        served_p50.to_bits(),
        expected.to_bits(),
        "service must serve the exact deterministic result"
    );
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_coalesce() {
    let server = test_server("coalesce");
    let addr = server.addr();
    // Per-node engine over a non-trivial fleet keeps the flight open
    // long enough that the racing requests land inside it.
    let body = r#"{"nodes":300,"seed":99,"engine":"per-node"}"#;
    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let bodies: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let r = exchange(addr, "POST", "/whatif", body);
                    assert_eq!(r.status, 200);
                    (r.header("x-cache").unwrap().to_owned(), r.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every caller saw the exact same bytes, whatever layer served it.
    for (status, b) in &bodies {
        assert_eq!(b, &bodies[0].1, "divergent body from layer {status}");
    }
    let m = server.metrics();
    let led = m.counter(names::SF_LEADER);
    let coalesced = m.counter(names::SF_COALESCED);
    let hits = m.counter(names::CACHE_HITS);
    assert_eq!(
        led + coalesced + hits,
        CLIENTS as u64,
        "every request is accounted to exactly one layer"
    );
    assert!(led >= 1, "someone must compute");
    assert!(
        coalesced >= 1,
        "racing identical requests must coalesce (led {led}, coalesced {coalesced}, hits {hits})"
    );
    server.shutdown();
}

#[test]
fn streaming_snapshots_then_final_report() {
    let server = test_server("stream");
    let addr = server.addr();
    let stream = exchange(
        addr,
        "POST",
        "/whatif/stream",
        r#"{"nodes":12,"shard_size":4}"#,
    );
    assert_eq!(stream.status, 200);
    let lines: Vec<&str> = stream.body.lines().collect();
    assert_eq!(lines.len(), 4, "3 shard snapshots + final body");
    for (i, line) in lines[..3].iter().enumerate() {
        let snap = Json::parse(line).expect("snapshot line is JSON");
        assert_eq!(
            snap.get("shards_done").and_then(Json::as_u64),
            Some(i as u64 + 1)
        );
        assert_eq!(
            snap.get("nodes_done").and_then(Json::as_u64),
            Some(4 * (i as u64 + 1))
        );
    }
    // The final line carries the same report a /whatif for the same
    // fleet produces (shard grouping equal, op differs only in echo).
    let final_report = Json::parse(lines[3])
        .unwrap()
        .get("report")
        .expect("final line has the report")
        .to_canonical_string();
    let whatif = exchange(addr, "POST", "/whatif", r#"{"nodes":12,"shard_size":4}"#);
    let whatif_report = Json::parse(&whatif.body)
        .unwrap()
        .get("report")
        .unwrap()
        .to_canonical_string();
    assert_eq!(final_report, whatif_report);
    let m = server.metrics();
    assert_eq!(m.counter(names::CHECKPOINT_SAVED), 3);
    server.shutdown();
}

#[test]
fn campaign_endpoint_serves_cached_deterministic_survival() {
    let server = test_server("campaign");
    let addr = server.addr();
    let body = r#"{"nodes":4,"days":6,"epoch_days":3,"dt_s":3600,"seed":7}"#;

    let cold = exchange(addr, "POST", "/campaign", body);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let parsed = Json::parse(&cold.body).expect("campaign body is JSON");
    let report = parsed.get("report").expect("report member");
    assert_eq!(report.get("nodes").and_then(Json::as_u64), Some(4));
    assert_eq!(report.get("days").and_then(Json::as_u64), Some(6));
    assert!(report.get("survivors").is_some());
    assert!(report.get("survival_days").is_some());
    assert_eq!(
        parsed
            .get("request")
            .and_then(|r| r.get("op"))
            .and_then(Json::as_str),
        Some("campaign")
    );

    // A respelled identical request must hit the cache byte for byte.
    let respelled = r#"{ "seed": 7, "days": 6, "nodes": 4, "epoch_days": 3, "dt_s": 3.6e3 }"#;
    let warm = exchange(addr, "POST", "/campaign", respelled);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    // Validation failures surface as 400s naming the problem.
    assert_eq!(
        exchange(addr, "POST", "/campaign", r#"{"climate":"hurricane"}"#).status,
        400
    );
    assert_eq!(
        exchange(addr, "POST", "/campaign", r#"{"days":0}"#).status,
        400
    );
    assert_eq!(exchange(addr, "GET", "/campaign", "").status, 405);
    server.shutdown();
}

#[test]
fn zero_capacity_queue_sheds_with_503() {
    let mut cfg = ServeConfig::default_local();
    cfg.http_workers = 1;
    cfg.sim_workers = 1;
    cfg.queue_capacity = 0;
    cfg.spill_dir = scratch_dir("shed");
    let server = Server::spawn(cfg).unwrap();
    let shed = exchange(server.addr(), "GET", "/healthz", "");
    assert_eq!(shed.status, 503);
    let m = server.metrics();
    assert_eq!(m.counter(names::HTTP_SHED), 1);
    assert_eq!(m.counter(names::HTTP_SERVER_ERROR), 1);
    server.shutdown();
}

#[test]
fn admin_shutdown_drains_and_stops() {
    let server = test_server("shutdown");
    let addr = server.addr();
    assert_eq!(exchange(addr, "GET", "/healthz", "").status, 200);
    let reply = exchange(addr, "POST", "/admin/shutdown", "");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, "{\"draining\":true}");
    // join() returning proves the accept loop and every worker exited.
    server.join();
    // The listener is gone: a fresh connection is refused or closed
    // without an answer.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => {
            let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
            let mut buf = Vec::new();
            let n = conn.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "a drained server must not answer new requests");
        }
    }
}

#[test]
fn two_servers_serve_identical_bytes_for_one_request() {
    // Cross-process-style determinism: independent instances, same
    // request, byte-identical cold responses (hashes are FNV-1a, not
    // RandomState, so this also pins hash stability).
    let a = test_server("det-a");
    let b = test_server("det-b");
    let body = r#"{"nodes":9,"seed":3,"tracker":"perturb-observe"}"#;
    let ra = exchange(a.addr(), "POST", "/whatif", body);
    let rb = exchange(b.addr(), "POST", "/whatif", body);
    assert_eq!(ra.body, rb.body);
    assert_eq!(ra.header("x-request-hash"), rb.header("x-request-hash"));
    a.shutdown();
    b.shutdown();
}
