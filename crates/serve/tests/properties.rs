//! Property tests for the request canonicalization layer: the cache
//! key must be a function of request *meaning*, never of spelling.

use eh_fleet::{Engine, TrackerKind};
use eh_serve::{Json, Op, WhatIfRequest};
use proptest::prelude::*;

/// A small whitespace alphabet indexed by two drawn bits per slot.
const WS: [&str; 4] = ["", " ", "\n\t", "  \r\n "];

fn ws(bits: u64, slot: usize) -> &'static str {
    WS[((bits >> (2 * (slot % 32))) & 3) as usize]
}

fn parse(text: &str) -> WhatIfRequest {
    let json = Json::parse(text).expect("test body is valid JSON");
    WhatIfRequest::from_json(Op::WhatIf, &json, 10_000).expect("test body is a valid request")
}

/// Renders `fields` as a JSON object in the given member order,
/// optionally sprinkling whitespace drawn from `wsbits` around the
/// separators.
fn render(fields: &[(String, String)], order: &[usize], wsbits: Option<u64>) -> String {
    let mut out = String::from("{");
    for (slot, &idx) in order.iter().enumerate() {
        if slot > 0 {
            out.push(',');
        }
        if let Some(bits) = wsbits {
            out.push_str(ws(bits, slot));
        }
        out.push('"');
        out.push_str(&fields[idx].0);
        out.push('"');
        if let Some(bits) = wsbits {
            out.push_str(ws(bits, slot + order.len()));
        }
        out.push(':');
        out.push_str(&fields[idx].1);
    }
    out.push('}');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_is_invariant_under_key_order_and_whitespace(
        nodes in 1..500u64,
        seed in 0..(1u64 << 53),
        tracker_idx in 0..11usize,
        engine_idx in 0..2usize,
        dt in 60.0..3600.0f64,
        shard in 1..64u64,
        rot in 0..11usize,
        reverse in 0..2u32,
        wsbits in 0..u64::MAX,
    ) {
        let fields: Vec<(String, String)> = vec![
            ("nodes".to_owned(), nodes.to_string()),
            ("seed".to_owned(), seed.to_string()),
            (
                "tracker".to_owned(),
                format!("\"{}\"", TrackerKind::ALL[tracker_idx].label()),
            ),
            (
                "engine".to_owned(),
                format!("\"{}\"", Engine::ALL[engine_idx].label()),
            ),
            ("dt_s".to_owned(), format!("{dt:?}")),
            ("shard_size".to_owned(), shard.to_string()),
            ("obs".to_owned(), "false".to_owned()),
            ("pv_cache".to_owned(), "true".to_owned()),
            ("tolerances".to_owned(), "\"production\"".to_owned()),
            ("trace_decimate".to_owned(), "600".to_owned()),
            (
                "placements".to_owned(),
                "{\"window\": 1,  \"interior\" : 2.0, \"outdoor\": 5e-1}".to_owned(),
            ),
        ];
        let base: Vec<usize> = (0..fields.len()).collect();
        let mut shuffled = base.clone();
        shuffled.rotate_left(rot % fields.len());
        if reverse == 1 {
            shuffled.reverse();
        }

        let plain = parse(&render(&fields, &base, None));
        let respelled = parse(&render(&fields, &shuffled, Some(wsbits)));
        prop_assert_eq!(plain.hash(), respelled.hash());
        prop_assert_eq!(plain.spec_hash(), respelled.spec_hash());
        prop_assert_eq!(plain.canonical_json(), respelled.canonical_json());
        prop_assert_eq!(&plain, &respelled);

        // Canonicalization is a fixed point: re-parsing the canonical
        // text reproduces the request and therefore the cache key. The
        // canonical form echoes the route-derived `op`, which bodies
        // must not carry, so strip it before re-submitting.
        let body = match Json::parse(&plain.canonical_json()).unwrap() {
            Json::Obj(members) => {
                Json::Obj(members.into_iter().filter(|(k, _)| k != "op").collect())
            }
            other => other,
        };
        let roundtrip = parse(&body.to_canonical_string());
        prop_assert_eq!(plain.hash(), roundtrip.hash());
        prop_assert_eq!(plain.canonical_json(), roundtrip.canonical_json());
    }

    #[test]
    fn number_spelling_does_not_change_the_hash(
        nodes in 1..1000u64,
        dt in 60.0..3600.0f64,
    ) {
        // Shortest-round-trip, plain display and scientific notation
        // all denote the same f64, so they must share a cache key.
        let spellings = [format!("{dt:?}"), format!("{dt}"), format!("{dt:e}")];
        let requests: Vec<WhatIfRequest> = spellings
            .iter()
            .map(|s| parse(&format!("{{\"nodes\":{nodes},\"dt_s\":{s}}}")))
            .collect();
        prop_assert_eq!(requests[0].hash(), requests[1].hash());
        prop_assert_eq!(requests[0].hash(), requests[2].hash());
        // An integral node count spelled in scientific notation too.
        let sci = parse(&format!("{{\"nodes\":{}e1,\"dt_s\":{:?}}}", nodes, dt));
        let lit = parse(&format!("{{\"nodes\":{},\"dt_s\":{:?}}}", nodes * 10, dt));
        prop_assert_eq!(sci.hash(), lit.hash());
    }

    #[test]
    fn defaults_are_spelling_invariant(seed in 0..(1u64 << 53)) {
        // Omitting a field and spelling its default explicitly must
        // land on the same cache entry.
        let implicit = parse(&format!("{{\"seed\":{seed}}}"));
        let explicit = parse(&format!(
            "{{\"seed\":{seed},\"nodes\":100,\"tracker\":\"focv\",\"engine\":\"batch\",\
             \"shard_size\":32,\"obs\":false,\"pv_cache\":true,\
             \"tolerances\":\"production\",\"dt_s\":600.0,\"trace_decimate\":600}}"
        ));
        prop_assert_eq!(implicit.hash(), explicit.hash());
        prop_assert_eq!(implicit.canonical_json(), explicit.canonical_json());
    }
}
