//! Canonical request hashing.
//!
//! Responses are a pure function of the canonical request (the fleet
//! pipeline is deterministic end to end), so a 64-bit FNV-1a over the
//! canonical JSON rendering is a *correct* cache key, not a heuristic
//! one: equal hashes of equal canonical bytes identify equal work. The
//! hash is stable across processes and platforms — no `RandomState`,
//! no pointer salting — which is what lets checkpoint spill files be
//! addressed by it across service restarts.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes bytes with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders a hash as the fixed-width lowercase hex token used in
/// response bodies, `X-Request-Hash` headers and spill directory names.
pub fn hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0), "0000000000000000");
        assert_eq!(hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(hex(u64::MAX).len(), 16);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a(b"{\"nodes\":100}"), fnv1a(b"{\"nodes\":101}"));
    }
}
