//! A small, dependency-free LRU cache with hit/miss/eviction
//! accounting.
//!
//! Two instances back the service: the **response cache** (canonical
//! request hash → rendered response bytes) and the **context cache**
//! (spec hash → shared [`eh_fleet::FleetContext`], deduplicating the
//! expensive population stamping and PV-surface warming across
//! requests that differ only in tracker or engine). Both are correct
//! by construction — the fleet pipeline is deterministic, so a cached
//! value is byte-identical to a recomputation — which is why eviction
//! policy only affects *cost*, never *answers*.
//!
//! Recency is tracked with a monotonic tick per entry; eviction scans
//! for the minimum. That is O(capacity) per insert, which is the right
//! trade at service cache sizes (tens to a few thousand entries)
//! against pulling in an intrusive-list dependency.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    entries: HashMap<K, (u64, V)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a key, refreshing its recency on a hit and counting
    /// the outcome either way.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((last_used, value)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a value, evicting the least recently
    /// used entry when the capacity bound would be exceeded. Returns
    /// whether an eviction happened.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.entries.insert(key, (self.tick, value));
        evicted
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_refresh() {
        let mut c: LruCache<u64, String> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into());
        c.insert(2, "two".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        // 1 was refreshed, so inserting 3 evicts 2.
        assert!(c.insert(3, "three".into()));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.get(&3).as_deref(), Some("three"));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c: LruCache<u8, u8> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11), "refresh must not evict");
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut c: LruCache<u8, u8> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 1);
        assert!(c.insert(2, 2));
        assert!(c.is_empty() || c.len() == 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(2));
    }
}
