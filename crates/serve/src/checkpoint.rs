//! Checkpoint/resume for endurance campaigns.
//!
//! The streaming endpoint folds a fleet shard by shard; a long
//! campaign that dies mid-run should not re-pay the shards it already
//! finished. Each completed shard's [`FleetReport`] is spilled to disk
//! under the request's canonical hash, and a restarted campaign for
//! the same request reloads those shards instead of recomputing them.
//! Because the fleet pipeline is deterministic, a reloaded shard is
//! **bit-identical** to a recomputed one — resume changes cost, never
//! answers — provided the serialization round-trips `f64`s exactly,
//! which is why every float is stored as the hex of its IEEE-754 bit
//! pattern rather than a decimal rendering.
//!
//! Obs-carrying campaigns (`"obs": true`) are not checkpointable: a
//! metric store's histograms and spans have no spill encoding here, so
//! saving one is refused rather than silently dropped.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use eh_fleet::{FleetReport, NodeOutcome, Placement};
use eh_node::NodeReport;
use eh_units::{Joules, Seconds};

use crate::error::ServeError;

const MAGIC: &str = "eh-serve shard checkpoint v1";

/// A directory of spilled shard checkpoints, one subdirectory per
/// request hash.
#[derive(Debug, Clone)]
pub struct SpillStore {
    root: PathBuf,
}

fn corrupt(message: impl Into<String>) -> ServeError {
    ServeError::Checkpoint(message.into())
}

/// Encodes an `f64` as the 16-hex-digit form of its bit pattern —
/// exact for every value, including negative zero and subnormals.
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, ServeError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| corrupt(format!("bad f64 bits {s:?}")))
}

/// Encodes a string as lowercase hex of its UTF-8 bytes, so names with
/// spaces or newlines never break the line-oriented format.
fn str_hex(s: &str) -> String {
    s.bytes().fold(String::new(), |mut out, b| {
        out.push_str(&format!("{b:02x}"));
        out
    })
}

fn parse_str_hex(s: &str) -> Result<String, ServeError> {
    if !s.len().is_multiple_of(2) {
        return Err(corrupt("odd-length string encoding"));
    }
    let bytes: Result<Vec<u8>, _> = (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16))
        .collect();
    let bytes = bytes.map_err(|_| corrupt("bad string encoding"))?;
    String::from_utf8(bytes).map_err(|_| corrupt("non-UTF-8 string encoding"))
}

impl SpillStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { root: dir.into() }
    }

    /// The spill directory of one request hash.
    pub fn campaign_dir(&self, request_hex: &str) -> PathBuf {
        self.root.join(request_hex)
    }

    fn shard_path(&self, request_hex: &str, shard_index: usize) -> PathBuf {
        self.campaign_dir(request_hex)
            .join(format!("shard-{shard_index:06}.ckpt"))
    }

    /// Spills one completed shard, atomically (write-temp-then-rename,
    /// so a crash mid-write never leaves a half shard a resume would
    /// trust).
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for obs-carrying reports; IO errors
    /// otherwise.
    pub fn save_shard(
        &self,
        request_hex: &str,
        shard_index: usize,
        report: &FleetReport,
    ) -> Result<(), ServeError> {
        if report.metrics.is_some() {
            return Err(ServeError::Unsupported(
                "checkpointing obs-carrying campaigns (metric stores have no spill encoding)",
            ));
        }
        let dir = self.campaign_dir(request_hex);
        std::fs::create_dir_all(&dir)?;

        let mut text = String::new();
        text.push_str(MAGIC);
        text.push('\n');
        text.push_str(&format!("fleet {}\n", str_hex(&report.name)));
        text.push_str(&format!("tracker {}\n", str_hex(&report.tracker)));
        text.push_str(&format!("nodes {}\n", report.outcomes.len()));
        for o in &report.outcomes {
            let r = &o.report;
            text.push_str(&format!(
                "node {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                o.id,
                o.placement.index(),
                u8::from(o.cold_start_ok),
                str_hex(&r.tracker),
                f64_hex(r.duration.value()),
                f64_hex(r.gross_energy.value()),
                f64_hex(r.overhead_energy.value()),
                f64_hex(r.load_demand.value()),
                f64_hex(r.load_served.value()),
                f64_hex(r.final_store_energy.value()),
                f64_hex(r.loss_energy.value()),
                f64_hex(r.compute_energy.value()),
                r.measurements,
                r.decisions,
            ));
        }

        let tmp = dir.join(format!("shard-{shard_index:06}.tmp"));
        let final_path = self.shard_path(request_hex, shard_index);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    /// Loads a previously spilled shard; `Ok(None)` when it was never
    /// saved.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] on a corrupt file (a resume must
    /// fail loudly, not fold garbage into a deterministic report).
    pub fn load_shard(
        &self,
        request_hex: &str,
        shard_index: usize,
    ) -> Result<Option<FleetReport>, ServeError> {
        let path = self.shard_path(request_hex, shard_index);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode(&text).map(Some)
    }

    fn decode(text: &str) -> Result<FleetReport, ServeError> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(corrupt("bad checkpoint magic"));
        }
        let field = |line: Option<&str>, tag: &str| -> Result<String, ServeError> {
            line.and_then(|l| l.strip_prefix(tag))
                .and_then(|l| l.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| corrupt(format!("missing {tag} line")))
        };
        let name = parse_str_hex(&field(lines.next(), "fleet")?)?;
        let tracker = parse_str_hex(&field(lines.next(), "tracker")?)?;
        let count: usize = field(lines.next(), "nodes")?
            .parse()
            .map_err(|_| corrupt("bad node count"))?;

        let mut outcomes = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| corrupt("truncated shard"))?;
            let parts: Vec<&str> = line.split(' ').collect();
            if parts.len() != 15 || parts[0] != "node" {
                return Err(corrupt(format!("bad node line {line:?}")));
            }
            let placement_idx: usize = parts[2]
                .parse()
                .map_err(|_| corrupt("bad placement index"))?;
            let placement = *Placement::ALL
                .get(placement_idx)
                .ok_or_else(|| corrupt("placement index out of range"))?;
            outcomes.push(NodeOutcome {
                id: parts[1].parse().map_err(|_| corrupt("bad node id"))?,
                placement,
                cold_start_ok: match parts[3] {
                    "0" => false,
                    "1" => true,
                    other => return Err(corrupt(format!("bad cold-start flag {other:?}"))),
                },
                report: NodeReport {
                    tracker: parse_str_hex(parts[4])?,
                    duration: Seconds::new(parse_f64_hex(parts[5])?),
                    gross_energy: Joules::new(parse_f64_hex(parts[6])?),
                    overhead_energy: Joules::new(parse_f64_hex(parts[7])?),
                    load_demand: Joules::new(parse_f64_hex(parts[8])?),
                    load_served: Joules::new(parse_f64_hex(parts[9])?),
                    final_store_energy: Joules::new(parse_f64_hex(parts[10])?),
                    loss_energy: Joules::new(parse_f64_hex(parts[11])?),
                    compute_energy: Joules::new(parse_f64_hex(parts[12])?),
                    measurements: parts[13]
                        .parse()
                        .map_err(|_| corrupt("bad measurement count"))?,
                    decisions: parts[14]
                        .parse()
                        .map_err(|_| corrupt("bad decision count"))?,
                    metrics: None,
                },
            });
        }
        if lines.next().is_some() {
            return Err(corrupt("trailing lines after last node"));
        }
        Ok(FleetReport {
            name,
            tracker,
            outcomes,
            metrics: None,
        })
    }

    /// Removes a finished campaign's spill directory (best-effort: a
    /// missing directory is fine).
    pub fn clear(&self, request_hex: &str) {
        let _ = std::fs::remove_dir_all(self.campaign_dir(request_hex));
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_fleet::{Engine, FleetContext, FleetSpec, TrackerKind};
    use eh_units::Seconds as S;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eh-serve-ckpt-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shard_report(obs: bool) -> FleetReport {
        let mut spec = FleetSpec::mixed_indoor_outdoor(6, 2011).unwrap();
        spec.trace_decimate = 600;
        spec.dt = S::new(600.0);
        spec.obs = obs;
        let ctx = FleetContext::prepare(&spec).unwrap();
        ctx.simulate_shard(TrackerKind::Focv, Engine::Batch, ctx.population().to_vec())
            .unwrap()
    }

    #[test]
    fn shard_round_trips_bit_for_bit() {
        let store = SpillStore::new(scratch_dir());
        let report = shard_report(false);
        assert!(store.load_shard("abcd", 0).unwrap().is_none());
        store.save_shard("abcd", 0, &report).unwrap();
        let loaded = store.load_shard("abcd", 0).unwrap().unwrap();
        assert_eq!(loaded, report, "resume must be bit-identical");
        // Exact bits, not approximate values.
        for (a, b) in loaded.outcomes.iter().zip(&report.outcomes) {
            assert_eq!(
                a.report.gross_energy.value().to_bits(),
                b.report.gross_energy.value().to_bits()
            );
        }
        store.clear("abcd");
        assert!(store.load_shard("abcd", 0).unwrap().is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn obs_reports_are_refused() {
        let store = SpillStore::new(scratch_dir());
        let report = shard_report(true);
        assert!(report.metrics.is_some());
        let err = store.save_shard("ffff", 0, &report).unwrap_err();
        assert!(matches!(err, ServeError::Unsupported(_)), "{err}");
    }

    #[test]
    fn corrupt_files_error_loudly() {
        let store = SpillStore::new(scratch_dir());
        let report = shard_report(false);
        store.save_shard("eeee", 3, &report).unwrap();
        let path = store.campaign_dir("eeee").join("shard-000003.ckpt");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 20);
        std::fs::write(&path, text).unwrap();
        assert!(store.load_shard("eeee", 3).is_err());
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(store.load_shard("eeee", 3).is_err());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn encodings_round_trip_edge_values() {
        for v in [0.0, -0.0, 1.5, -3.25e-300, f64::MIN_POSITIVE] {
            assert_eq!(parse_f64_hex(&f64_hex(v)).unwrap().to_bits(), v.to_bits());
        }
        for s in ["", "plain", "with space\nand newline", "ünïcödé"] {
            assert_eq!(parse_str_hex(&str_hex(s)).unwrap(), s);
        }
        assert!(parse_str_hex("abc").is_err());
        assert!(parse_f64_hex("xyz").is_err());
    }
}
