//! Error type for the serving layer.

use std::error::Error;
use std::fmt;

use eh_campaign::CampaignError;
use eh_fleet::FleetError;

/// Errors raised while accepting, validating, computing or persisting a
/// what-if request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request body was not well-formed JSON or violated the
    /// request schema; the message is safe to echo to the client.
    BadRequest(String),
    /// The underlying fleet simulation failed.
    Fleet(FleetError),
    /// The underlying endurance campaign failed.
    Campaign(CampaignError),
    /// A socket / filesystem operation failed (message carries the
    /// `std::io` rendering — `io::Error` itself is not `Clone`, and
    /// single-flight followers share the leader's outcome).
    Io(String),
    /// An environment/CLI configuration value failed strict parsing.
    Env(crate::envcfg::EnvError),
    /// The request combined features the service cannot honour (for
    /// example checkpointing a metrics-carrying campaign).
    Unsupported(&'static str),
    /// A checkpoint file existed but failed validation and was
    /// discarded; the path is reported for the operator.
    Checkpoint(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Fleet(e) => write!(f, "fleet simulation: {e}"),
            ServeError::Campaign(e) => write!(f, "endurance campaign: {e}"),
            ServeError::Io(msg) => write!(f, "i/o: {msg}"),
            ServeError::Env(e) => write!(f, "configuration: {e}"),
            ServeError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<FleetError> for ServeError {
    fn from(e: FleetError) -> Self {
        ServeError::Fleet(e)
    }
}

impl From<CampaignError> for ServeError {
    fn from(e: CampaignError) -> Self {
        ServeError::Campaign(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<crate::envcfg::EnvError> for ServeError {
    fn from(e: crate::envcfg::EnvError) -> Self {
        ServeError::Env(e)
    }
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::Unsupported(_) => 422,
            _ => 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_messages() {
        let bad = ServeError::BadRequest("nodes must be > 0".into());
        assert_eq!(bad.status(), 400);
        assert!(bad.to_string().contains("nodes must be > 0"));
        assert_eq!(ServeError::Unsupported("x").status(), 422);
        assert_eq!(ServeError::Fleet(FleetError::EmptyFleet).status(), 500);
        let io: ServeError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
