//! `eh-serve` — the long-running fleet-simulation service.
//!
//! ```text
//! EH_SERVE_ADDR=127.0.0.1:8080 eh-serve
//! curl -s localhost:8080/whatif -d '{"nodes":500,"tracker":"focv"}'
//! ```
//!
//! Configuration is environment-only (`EH_SERVE_*`, strict parsing);
//! the process runs until `POST /admin/shutdown` drains it.

use eh_serve::{ServeConfig, Server};

fn main() {
    let mut config = match ServeConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("eh-serve: {e}");
            std::process::exit(2);
        }
    };
    if config.addr == "127.0.0.1:0" {
        // An ephemeral port is right for tests, puzzling for a CLI
        // default; pin the conventional local port instead.
        config.addr = "127.0.0.1:8080".to_owned();
    }
    let server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eh-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("eh-serve listening on {}", server.addr());
    println!("POST /whatif | /compare | /whatif/stream | /campaign — GET /healthz | /metrics");
    println!(
        "stop with: curl -X POST http://{}/admin/shutdown",
        server.addr()
    );
    server.join();
    println!("eh-serve drained and stopped");
}
