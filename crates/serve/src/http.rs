//! A minimal, dependency-free HTTP/1.1 layer over `std::net`.
//!
//! Exactly the slice the service needs: `GET`/`POST` request parsing
//! with bounded header and body sizes, fixed-length responses, and
//! chunked transfer encoding for the streaming endpoint. Every
//! response closes its connection (`Connection: close`) — the service
//! optimizes for cheap, stateless exchanges, not connection reuse, and
//! one-shot connections keep the worker pool's queueing semantics
//! trivial to reason about.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/whatif`.
    pub target: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-parse failure: the status to answer with and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpParseError {
    /// The HTTP status code to respond with.
    pub status: u16,
    /// Human-readable cause, safe to echo.
    pub message: String,
}

fn parse_error(status: u16, message: impl Into<String>) -> HttpParseError {
    HttpParseError {
        status,
        message: message.into(),
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// `Err(parse error)` carries the status to answer with (400 for
/// malformed requests, 413 for oversized ones, 505 for non-1.x
/// versions); transport failures surface as a 400-class error too,
/// since nothing can be answered on a dead socket anyway.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpParseError> {
    // Accumulate until the blank line ending the head.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(parse_error(413, "request head too large"));
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| parse_error(400, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(parse_error(400, "connection closed mid-request"));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let body_prefix = head.split_off(head_end + 4);
    head.truncate(head_end);

    let head_text =
        std::str::from_utf8(&head).map_err(|_| parse_error(400, "non-UTF-8 request head"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(parse_error(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(parse_error(505, "HTTP version not supported"));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| parse_error(400, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| parse_error(400, "invalid Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(parse_error(413, "request body too large"));
    }

    let mut body = body_prefix;
    if body.len() > content_length {
        return Err(parse_error(400, "body longer than Content-Length"));
    }
    while body.len() < content_length {
        let n = stream
            .read(&mut buf)
            .map_err(|e| parse_error(400, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(parse_error(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
        if body.len() > content_length {
            return Err(parse_error(400, "body longer than Content-Length"));
        }
    }

    Ok(HttpRequest {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body,
    })
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes it.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: one `write_chunk` per
/// streamed snapshot, then `finish` for the terminating zero chunk.
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    finished: bool,
}

impl<'a> ChunkedWriter<'a> {
    /// Starts a 200 chunked response.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn start(
        stream: &'a mut TcpStream,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Self> {
        let mut head = String::from(
            "HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n",
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Self {
            stream,
            finished: false,
        })
    }

    /// Writes one chunk and flushes it, so long-running campaigns
    /// surface snapshots as they happen.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw request bytes through a real socket pair into
    /// `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<HttpRequest, HttpParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            c.flush().unwrap();
            // Keep the socket open briefly so the reader sees the full
            // request rather than an early close.
            c
        });
        let (mut stream, _) = listener.accept().unwrap();
        let parsed = read_request(&mut stream);
        drop(writer.join().unwrap());
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_raw(
            b"POST /whatif HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nX-Extra: v\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/whatif");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("x-extra"), Some("v"));
        assert_eq!(req.header("X-EXTRA"), Some("v"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_raw(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert_eq!(parse_raw(b"BROKEN\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_raw(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status,
            505
        );
        assert_eq!(
            parse_raw(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_raw(huge.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn reasons_cover_the_emitted_statuses() {
        for status in [200, 400, 404, 405, 413, 422, 500, 503, 505] {
            assert_ne!(reason(status), "Unknown");
        }
        assert_eq!(reason(418), "Unknown");
    }

    #[test]
    fn response_and_chunked_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut all = Vec::new();
            c.read_to_end(&mut all).unwrap();
            String::from_utf8(all).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(&mut stream, 200, &[("x-cache", "hit")], b"{\"ok\":true}").unwrap();
        drop(stream);
        let text = client.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut all = Vec::new();
            c.read_to_end(&mut all).unwrap();
            String::from_utf8(all).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut w = ChunkedWriter::start(&mut stream, &[]).unwrap();
        w.write_chunk(b"line one\n").unwrap();
        w.write_chunk(b"").unwrap(); // ignored, must not terminate
        w.write_chunk(b"line two\n").unwrap();
        w.finish().unwrap();
        drop(stream);
        let text = client.join().unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.contains("9\r\nline one\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
