//! Live service metrics, backed by the workspace's `eh-obs` store.
//!
//! One shared [`ServiceMetrics`] instance counts HTTP traffic, cache
//! outcomes, single-flight coalescing and checkpoint activity, and
//! absorbs the **simulated** energy ledgers of obs-enabled requests, so
//! `/metrics` exposes both service health and the cumulative simulated
//! energy the service has accounted. Everything rides in an
//! [`eh_obs::Metrics`] behind a mutex; the exported document inherits
//! its deterministic key order.

use std::sync::Mutex;

use eh_obs::{Metrics, Recorder as _};

/// Counter names the service increments (exposed for tests and docs).
pub mod names {
    /// Accepted connections.
    pub const HTTP_CONNECTIONS: &str = "serve.http.connections";
    /// Requests answered with 2xx.
    pub const HTTP_OK: &str = "serve.http.ok";
    /// Requests answered with 4xx.
    pub const HTTP_CLIENT_ERROR: &str = "serve.http.client_error";
    /// Requests answered with 5xx (including 503 sheds).
    pub const HTTP_SERVER_ERROR: &str = "serve.http.server_error";
    /// Connections shed with 503 because the queue was full.
    pub const HTTP_SHED: &str = "serve.http.shed";
    /// Response-cache hits.
    pub const CACHE_HITS: &str = "serve.cache.hits";
    /// Response-cache misses.
    pub const CACHE_MISSES: &str = "serve.cache.misses";
    /// Response-cache evictions.
    pub const CACHE_EVICTIONS: &str = "serve.cache.evictions";
    /// Context-cache hits (population + surface reuse).
    pub const CONTEXT_HITS: &str = "serve.context_cache.hits";
    /// Context-cache misses (a population was stamped).
    pub const CONTEXT_MISSES: &str = "serve.context_cache.misses";
    /// Requests that led a single-flight computation.
    pub const SF_LEADER: &str = "serve.singleflight.leader";
    /// Requests coalesced onto another caller's computation.
    pub const SF_COALESCED: &str = "serve.singleflight.coalesced";
    /// Shard checkpoints written to the spill directory.
    pub const CHECKPOINT_SAVED: &str = "serve.checkpoint.shards_saved";
    /// Shard checkpoints resumed from the spill directory.
    pub const CHECKPOINT_LOADED: &str = "serve.checkpoint.shards_loaded";
    /// Nodes simulated on behalf of requests (cache misses only).
    pub const SIM_NODES: &str = "serve.sim.nodes";
    /// Current connection-queue depth gauge.
    pub const QUEUE_DEPTH: &str = "serve.queue.depth";
}

/// The service-wide shared metric store.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    inner: Mutex<Metrics>,
}

impl ServiceMetrics {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.lock().add_counter(name, delta);
    }

    /// Bumps a counter by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.lock().set_gauge(name, value);
    }

    /// Classifies a response status into the ok/client/server counters.
    pub fn count_status(&self, status: u16) {
        let name = match status {
            200..=299 => names::HTTP_OK,
            400..=499 => names::HTTP_CLIENT_ERROR,
            _ => names::HTTP_SERVER_ERROR,
        };
        self.incr(name);
    }

    /// Absorbs a request's simulated-energy metrics (ledger, spans,
    /// engine counters) into the service-wide store.
    pub fn absorb(&self, request_metrics: Metrics) {
        self.lock().merge_from(request_metrics);
    }

    /// Runs `f` against the underlying store (for multi-field updates
    /// such as [`eh_fleet::SurfacePool::record_into`]).
    pub fn with<T>(&self, f: impl FnOnce(&mut Metrics) -> T) -> T {
        f(&mut self.lock())
    }

    /// Reads a counter's current value.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counter(name)
    }

    /// Renders the `/metrics` response body: a stable envelope around
    /// the deterministic `eh-obs` JSON export.
    pub fn render(&self) -> String {
        format!(
            "{{\"service\":\"eh-serve\",\"metrics\":{}}}",
            self.lock().to_json()
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Metrics> {
        self.inner.lock().expect("metrics lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Joules;

    #[test]
    fn counts_and_renders() {
        let m = ServiceMetrics::new();
        m.incr(names::HTTP_CONNECTIONS);
        m.add(names::SIM_NODES, 128);
        m.gauge(names::QUEUE_DEPTH, 3.0);
        m.count_status(200);
        m.count_status(404);
        m.count_status(503);
        assert_eq!(m.counter(names::HTTP_OK), 1);
        assert_eq!(m.counter(names::HTTP_CLIENT_ERROR), 1);
        assert_eq!(m.counter(names::HTTP_SERVER_ERROR), 1);
        let body = m.render();
        assert!(body.starts_with("{\"service\":\"eh-serve\",\"metrics\":{"));
        assert!(body.contains("\"serve.sim.nodes\":128"));
        assert!(body.contains("\"serve.queue.depth\":3.0"));
    }

    #[test]
    fn absorbs_request_ledgers() {
        let m = ServiceMetrics::new();
        let mut per_request = Metrics::new();
        per_request.charge(eh_obs::EnergyBucket::Load, Joules::new(2.5));
        m.absorb(per_request);
        assert!(m.render().contains("\"load\":2.5"));
    }
}
