//! What-if request validation, canonicalization and hashing.
//!
//! A request body is parsed into a [`WhatIfRequest`] with every
//! omitted field filled from the reference deployment's defaults, then
//! re-serialized as **canonical JSON** ([`WhatIfRequest::canonical_json`])
//! and hashed. Hashing the *validated* request rather than the raw
//! bytes is what makes the cache key semantic: key order, whitespace,
//! number spelling, and explicitly-spelled defaults all collapse onto
//! one key.
//!
//! Two hashes exist per request. The full [`WhatIfRequest::hash`]
//! covers every field including the operation, tracker, engine and
//! shard size — it keys the response cache and single-flight table.
//! The narrower [`WhatIfRequest::spec_hash`] covers only the fields
//! that determine the stamped population and warmed surfaces — it keys
//! the shared [`eh_fleet::FleetContext`] cache, so a `/compare` and a
//! `/whatif` over the same fleet reuse one prepared context.
//!
//! **Shard grouping is part of cache identity.** Percentiles are
//! sharding-independent, but when `obs` is enabled the merged metric
//! store contains f64 folds performed per shard, so reports produced
//! under different `shard_size` values may differ in low-order ledger
//! bits. `shard_size` is therefore hashed with the request rather than
//! treated as an execution detail.

use eh_campaign::{CampaignSpec, Climate, DriftRates, FaultPlan, LoadClass};
use eh_fleet::{Engine, FleetSpec, PlacementMix, Tolerances, TrackerKind};
use eh_units::Seconds;

use crate::error::ServeError;
use crate::hash::fnv1a;
use crate::json::Json;

/// The operation a request body was posted to. Part of the canonical
/// hash so `/whatif`, `/compare` and `/whatif/stream` bodies never
/// collide on a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// One tracker over one fleet → one report summary.
    WhatIf,
    /// Every tracker over one fleet → eleven report summaries.
    Compare,
    /// One tracker over one fleet, streamed per shard with
    /// checkpoint/resume.
    Stream,
}

impl Op {
    /// Stable label, used in the canonical rendering.
    pub fn label(self) -> &'static str {
        match self {
            Op::WhatIf => "whatif",
            Op::Compare => "compare",
            Op::Stream => "stream",
        }
    }
}

/// The tolerance budget presets a request may name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TolerancePreset {
    /// [`Tolerances::production_batch`].
    Production,
    /// [`Tolerances::none`] (every node is the golden prototype).
    None,
}

impl TolerancePreset {
    /// Stable label, used in the canonical rendering.
    pub fn label(self) -> &'static str {
        match self {
            TolerancePreset::Production => "production",
            TolerancePreset::None => "none",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "production" | "production-batch" | "production_batch" => {
                Some(TolerancePreset::Production)
            }
            "none" | "golden" => Some(TolerancePreset::None),
            _ => None,
        }
    }

    fn build(self) -> Tolerances {
        match self {
            TolerancePreset::Production => Tolerances::production_batch(),
            TolerancePreset::None => Tolerances::none(),
        }
    }
}

/// A validated what-if request: every field explicit, defaults filled.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRequest {
    /// Which operation the body was posted to.
    pub op: Op,
    /// Fleet size.
    pub nodes: u32,
    /// Population seed.
    pub seed: u64,
    /// The tracker to run (`/compare` ignores it when executing but it
    /// stays in the hash — it is part of what the client asked).
    pub tracker: TrackerKind,
    /// Shard-execution engine.
    pub engine: Engine,
    /// Placement weights `[window, interior, outdoor]` (any scale).
    pub weights: [f64; 3],
    /// Tolerance budget preset.
    pub tolerances: TolerancePreset,
    /// Simulation step, seconds.
    pub dt_s: f64,
    /// Trace decimation factor.
    pub trace_decimate: usize,
    /// Whether nodes answer PV queries from the shared memoized
    /// surface.
    pub pv_cache: bool,
    /// Whether per-node deterministic metrics are collected and folded.
    pub obs: bool,
    /// Nodes per shard for the streaming path (and hashed for every
    /// op — see the module docs on shard grouping).
    pub shard_size: usize,
}

/// Service defaults: the 10-minute grid the workspace's fast profiles
/// use, so an unadorned request answers interactively.
const DEFAULT_NODES: u64 = 100;
const DEFAULT_SEED: u64 = 2011;
const DEFAULT_DT_S: f64 = 600.0;
const DEFAULT_TRACE_DECIMATE: u64 = 600;

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest(message.into())
}

impl WhatIfRequest {
    /// Builds a validated request from a parsed body, filling every
    /// omitted field with the service default and bounding the fleet
    /// size by `max_nodes`.
    ///
    /// # Errors
    ///
    /// Rejects non-object bodies, unknown fields (a typoed knob must
    /// not silently fall back to its default), out-of-range values,
    /// and unknown tracker/engine/tolerance spellings.
    pub fn from_json(op: Op, body: &Json, max_nodes: u32) -> Result<Self, ServeError> {
        let members = body
            .as_obj()
            .ok_or_else(|| bad("request body must be a JSON object"))?;
        const KNOWN: [&str; 11] = [
            "nodes",
            "seed",
            "tracker",
            "engine",
            "placements",
            "tolerances",
            "dt_s",
            "trace_decimate",
            "pv_cache",
            "obs",
            "shard_size",
        ];
        for (key, _) in members {
            if !KNOWN.contains(&key.as_str()) {
                return Err(bad(format!(
                    "unknown field {key:?}; known fields: {}",
                    KNOWN.join(", ")
                )));
            }
        }

        let u64_field = |name: &str, default: u64| -> Result<u64, ServeError> {
            match body.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad(format!("{name} must be a non-negative integer"))),
            }
        };
        let bool_field = |name: &str, default: bool| -> Result<bool, ServeError> {
            match body.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad(format!("{name} must be a boolean"))),
            }
        };

        let nodes = u64_field("nodes", DEFAULT_NODES)?;
        if nodes == 0 || nodes > u64::from(max_nodes) {
            return Err(bad(format!(
                "nodes must be in 1..={max_nodes}, got {nodes}"
            )));
        }
        let seed = u64_field("seed", DEFAULT_SEED)?;

        let tracker = match body.get("tracker") {
            None => TrackerKind::Focv,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("tracker must be a string"))?;
                TrackerKind::parse(s).ok_or_else(|| bad(format!("unknown tracker {s:?}")))?
            }
        };
        let engine = match body.get("engine") {
            None => Engine::Batch,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("engine must be a string"))?;
                Engine::parse(s).ok_or_else(|| bad(format!("unknown engine {s:?}")))?
            }
        };
        let tolerances = match body.get("tolerances") {
            None => TolerancePreset::Production,
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| bad("tolerances must be a string preset"))?;
                TolerancePreset::parse(s).ok_or_else(|| {
                    bad(format!("unknown tolerances preset {s:?} (production|none)"))
                })?
            }
        };

        let weights = match body.get("placements") {
            None => [0.25, 0.60, 0.15],
            Some(v) => {
                let obj = v
                    .as_obj()
                    .ok_or_else(|| bad("placements must be an object of weights"))?;
                const SLOTS: [&str; 3] = ["window", "interior", "outdoor"];
                for (key, _) in obj {
                    if !SLOTS.contains(&key.as_str()) {
                        return Err(bad(format!(
                            "unknown placement {key:?}; known: window, interior, outdoor"
                        )));
                    }
                }
                let weight = |name: &str| -> Result<f64, ServeError> {
                    match v.get(name) {
                        None => Ok(0.0),
                        Some(w) => w
                            .as_f64()
                            .ok_or_else(|| bad(format!("placements.{name} must be a number"))),
                    }
                };
                [weight("window")?, weight("interior")?, weight("outdoor")?]
            }
        };
        // Early, named validation; `to_spec` re-runs it structurally.
        PlacementMix::new(weights[0], weights[1], weights[2])
            .map_err(|e| bad(format!("invalid placements: {e}")))?;

        let dt_s = match body.get("dt_s") {
            None => DEFAULT_DT_S,
            Some(v) => v.as_f64().ok_or_else(|| bad("dt_s must be a number"))?,
        };
        if !(dt_s.is_finite() && dt_s > 0.0) {
            return Err(bad(format!("dt_s must be a positive number, got {dt_s}")));
        }

        let trace_decimate = u64_field("trace_decimate", DEFAULT_TRACE_DECIMATE)?;
        if trace_decimate == 0 || trace_decimate > 86_400 {
            return Err(bad(format!(
                "trace_decimate must be in 1..=86400, got {trace_decimate}"
            )));
        }
        let shard_size = u64_field("shard_size", 32)?;
        if shard_size == 0 || shard_size > 4096 {
            return Err(bad(format!(
                "shard_size must be in 1..=4096, got {shard_size}"
            )));
        }

        let request = Self {
            op,
            nodes: nodes as u32,
            seed,
            tracker,
            engine,
            weights,
            tolerances,
            dt_s,
            trace_decimate: trace_decimate as usize,
            pv_cache: bool_field("pv_cache", true)?,
            obs: bool_field("obs", false)?,
            shard_size: shard_size as usize,
        };
        // Final structural check through the fleet layer's own
        // validation, so the service can never cache a spec the
        // runner would reject.
        request.to_spec()?.validate()?;
        Ok(request)
    }

    /// The canonical JSON rendering of the validated request: every
    /// field explicit, keys sorted, shortest-round-trip numbers.
    pub fn canonical_json(&self) -> String {
        self.render(true).to_canonical_string()
    }

    /// Canonical JSON of only the spec-determining fields (no op,
    /// tracker, engine or shard size).
    pub fn spec_canonical_json(&self) -> String {
        self.render(false).to_canonical_string()
    }

    fn render(&self, full: bool) -> Json {
        let mut members = vec![
            ("dt_s".to_owned(), Json::Num(self.dt_s)),
            ("nodes".to_owned(), Json::Num(f64::from(self.nodes))),
            ("obs".to_owned(), Json::Bool(self.obs)),
            (
                "placements".to_owned(),
                Json::Obj(vec![
                    ("window".to_owned(), Json::Num(self.weights[0])),
                    ("interior".to_owned(), Json::Num(self.weights[1])),
                    ("outdoor".to_owned(), Json::Num(self.weights[2])),
                ]),
            ),
            ("pv_cache".to_owned(), Json::Bool(self.pv_cache)),
            ("seed".to_owned(), Json::Num(self.seed as f64)),
            (
                "tolerances".to_owned(),
                Json::Str(self.tolerances.label().to_owned()),
            ),
            (
                "trace_decimate".to_owned(),
                Json::Num(self.trace_decimate as f64),
            ),
        ];
        if full {
            members.push(("op".to_owned(), Json::Str(self.op.label().to_owned())));
            members.push((
                "tracker".to_owned(),
                Json::Str(self.tracker.label().to_owned()),
            ));
            members.push((
                "engine".to_owned(),
                Json::Str(self.engine.label().to_owned()),
            ));
            members.push(("shard_size".to_owned(), Json::Num(self.shard_size as f64)));
        }
        Json::Obj(members)
    }

    /// The full request hash: response-cache and single-flight key,
    /// spill-directory address.
    pub fn hash(&self) -> u64 {
        fnv1a(self.canonical_json().as_bytes())
    }

    /// The spec hash: context-cache key (population + surfaces reuse).
    pub fn spec_hash(&self) -> u64 {
        fnv1a(self.spec_canonical_json().as_bytes())
    }

    /// Materializes the fleet spec this request describes.
    ///
    /// # Errors
    ///
    /// Propagates the fleet layer's constructor validation.
    pub fn to_spec(&self) -> Result<FleetSpec, ServeError> {
        let mut spec = FleetSpec::mixed_indoor_outdoor(self.nodes, self.seed)?;
        spec.placements = PlacementMix::new(self.weights[0], self.weights[1], self.weights[2])?;
        spec.tolerances = self.tolerances.build();
        spec.dt = Seconds::new(self.dt_s);
        spec.trace_decimate = self.trace_decimate;
        spec.pv_cache = self.pv_cache;
        spec.obs = self.obs;
        Ok(spec)
    }
}

/// A validated endurance-campaign request: every field explicit,
/// defaults filled from [`CampaignSpec::smoke`]'s setting. Campaigns
/// share the service's response cache and single-flight table; the
/// literal `"op":"campaign"` member in the canonical rendering keeps
/// their hashes disjoint from every what-if key.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Fleet size.
    pub nodes: u32,
    /// Seed fixing population, weather and every drift/fault schedule.
    pub seed: u64,
    /// Campaign length in simulated days.
    pub days: u32,
    /// Degradation-epoch length in days.
    pub epoch_days: u32,
    /// Deployment latitude in degrees (positive north).
    pub latitude_deg: f64,
    /// Climate regime.
    pub climate: Climate,
    /// Node load class.
    pub load: LoadClass,
    /// Tracker under test.
    pub tracker: TrackerKind,
    /// Fleet engine.
    pub engine: Engine,
    /// Whether the reference drift rates apply (false = no drift).
    pub drift: bool,
    /// Per-node fault probability over the whole campaign.
    pub fault_probability: f64,
    /// Simulation step, seconds.
    pub dt_s: f64,
    /// Nodes per shard (hashed — see the module docs on shard
    /// grouping).
    pub shard_size: usize,
}

/// The longest campaign the service accepts: ten simulated years.
const MAX_CAMPAIGN_DAYS: u64 = 3650;

impl CampaignRequest {
    /// Builds a validated campaign request from a parsed body, filling
    /// every omitted field with the smoke-campaign default and bounding
    /// the fleet size by `max_nodes`.
    ///
    /// # Errors
    ///
    /// Rejects non-object bodies, unknown fields, out-of-range values,
    /// and unknown climate/load/tracker/engine spellings.
    pub fn from_json(body: &Json, max_nodes: u32) -> Result<Self, ServeError> {
        let members = body
            .as_obj()
            .ok_or_else(|| bad("request body must be a JSON object"))?;
        const KNOWN: [&str; 12] = [
            "nodes",
            "seed",
            "days",
            "epoch_days",
            "latitude",
            "climate",
            "load",
            "tracker",
            "engine",
            "drift",
            "fault_probability",
            "dt_s",
        ];
        // shard_size shares the what-if spelling.
        for (key, _) in members {
            if key != "shard_size" && !KNOWN.contains(&key.as_str()) {
                return Err(bad(format!(
                    "unknown field {key:?}; known fields: {}, shard_size",
                    KNOWN.join(", ")
                )));
            }
        }

        let u64_field = |name: &str, default: u64| -> Result<u64, ServeError> {
            match body.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad(format!("{name} must be a non-negative integer"))),
            }
        };
        let f64_field = |name: &str, default: f64| -> Result<f64, ServeError> {
            match body.get(name) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| bad(format!("{name} must be a number"))),
            }
        };

        let smoke = CampaignSpec::smoke(DEFAULT_SEED);
        let nodes = u64_field("nodes", u64::from(smoke.nodes))?;
        if nodes == 0 || nodes > u64::from(max_nodes) {
            return Err(bad(format!(
                "nodes must be in 1..={max_nodes}, got {nodes}"
            )));
        }
        let days = u64_field("days", u64::from(smoke.days))?;
        if days == 0 || days > MAX_CAMPAIGN_DAYS {
            return Err(bad(format!(
                "days must be in 1..={MAX_CAMPAIGN_DAYS}, got {days}"
            )));
        }
        let epoch_days = u64_field("epoch_days", u64::from(smoke.epoch_days))?;

        let climate = match body.get("climate") {
            None => smoke.climate,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("climate must be a string"))?;
                Climate::parse(s)
                    .ok_or_else(|| bad(format!("unknown climate {s:?} (temperate|monsoon|arid)")))?
            }
        };
        let load = match body.get("load") {
            None => smoke.load,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("load must be a string"))?;
                LoadClass::parse(s)
                    .ok_or_else(|| bad(format!("unknown load {s:?} (sensor|radio|motor)")))?
            }
        };
        let tracker = match body.get("tracker") {
            None => smoke.tracker,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("tracker must be a string"))?;
                TrackerKind::parse(s).ok_or_else(|| bad(format!("unknown tracker {s:?}")))?
            }
        };
        let engine = match body.get("engine") {
            None => smoke.engine,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| bad("engine must be a string"))?;
                Engine::parse(s).ok_or_else(|| bad(format!("unknown engine {s:?}")))?
            }
        };
        let drift = match body.get("drift") {
            None => true,
            Some(v) => v.as_bool().ok_or_else(|| bad("drift must be a boolean"))?,
        };

        let shard_size = u64_field("shard_size", 32)?;
        if shard_size == 0 || shard_size > 4096 {
            return Err(bad(format!(
                "shard_size must be in 1..=4096, got {shard_size}"
            )));
        }

        let request = Self {
            nodes: nodes as u32,
            seed: u64_field("seed", DEFAULT_SEED)?,
            days: days as u32,
            epoch_days: epoch_days.min(u64::from(u32::MAX)) as u32,
            latitude_deg: f64_field("latitude", smoke.latitude_deg)?,
            climate,
            load,
            tracker,
            engine,
            drift,
            fault_probability: f64_field("fault_probability", smoke.faults.probability)?,
            dt_s: f64_field("dt_s", smoke.dt.value())?,
            shard_size: shard_size as usize,
        };
        // Validate through the campaign layer's own rules (epoch fit,
        // dt-divides-day, latitude, fault probability), surfaced as a
        // client error naming the field.
        request
            .to_spec()
            .validate()
            .map_err(|e| bad(e.to_string()))?;
        Ok(request)
    }

    /// The canonical JSON rendering: every field explicit, keys sorted,
    /// the op pinned to `"campaign"`.
    pub fn canonical_json(&self) -> String {
        Json::Obj(vec![
            (
                "climate".to_owned(),
                Json::Str(self.climate.label().to_owned()),
            ),
            ("days".to_owned(), Json::Num(f64::from(self.days))),
            ("drift".to_owned(), Json::Bool(self.drift)),
            ("dt_s".to_owned(), Json::Num(self.dt_s)),
            (
                "engine".to_owned(),
                Json::Str(self.engine.label().to_owned()),
            ),
            (
                "epoch_days".to_owned(),
                Json::Num(f64::from(self.epoch_days)),
            ),
            (
                "fault_probability".to_owned(),
                Json::Num(self.fault_probability),
            ),
            ("latitude".to_owned(), Json::Num(self.latitude_deg)),
            ("load".to_owned(), Json::Str(self.load.label().to_owned())),
            ("nodes".to_owned(), Json::Num(f64::from(self.nodes))),
            ("op".to_owned(), Json::Str("campaign".to_owned())),
            ("seed".to_owned(), Json::Num(self.seed as f64)),
            ("shard_size".to_owned(), Json::Num(self.shard_size as f64)),
            (
                "tracker".to_owned(),
                Json::Str(self.tracker.label().to_owned()),
            ),
        ])
        .to_canonical_string()
    }

    /// The response-cache / single-flight key.
    pub fn hash(&self) -> u64 {
        fnv1a(self.canonical_json().as_bytes())
    }

    /// Materializes the campaign spec this request describes (validated
    /// separately — see [`CampaignRequest::from_json`]).
    pub fn to_spec(&self) -> CampaignSpec {
        let mut spec = CampaignSpec::reference(self.nodes, self.seed);
        spec.name = format!(
            "campaign x{} {}d {}",
            self.nodes,
            self.days,
            self.climate.label()
        );
        spec.days = self.days;
        spec.epoch_days = self.epoch_days;
        spec.latitude_deg = self.latitude_deg;
        spec.climate = self.climate;
        spec.load = self.load;
        spec.drift = if self.drift {
            DriftRates::reference()
        } else {
            DriftRates::none()
        };
        spec.faults = FaultPlan {
            probability: self.fault_probability,
        };
        spec.tracker = self.tracker;
        spec.engine = self.engine;
        spec.dt = Seconds::new(self.dt_s);
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(op: Op, body: &str) -> Result<WhatIfRequest, ServeError> {
        WhatIfRequest::from_json(op, &Json::parse(body).unwrap(), 10_000)
    }

    #[test]
    fn defaults_fill_an_empty_body() {
        let r = parse(Op::WhatIf, "{}").unwrap();
        assert_eq!(r.nodes, 100);
        assert_eq!(r.seed, 2011);
        assert_eq!(r.tracker, TrackerKind::Focv);
        assert_eq!(r.engine, Engine::Batch);
        assert_eq!(r.tolerances, TolerancePreset::Production);
        assert!(r.pv_cache);
        assert!(!r.obs);
        assert_eq!(r.shard_size, 32);
    }

    #[test]
    fn explicit_defaults_hash_like_omitted_defaults() {
        let omitted = parse(Op::WhatIf, "{}").unwrap();
        let spelled = parse(
            Op::WhatIf,
            r#"{"nodes":100,"seed":2011,"tracker":"focv","engine":"batch",
                "tolerances":"production","dt_s":6e2,"trace_decimate":600,
                "pv_cache":true,"obs":false,"shard_size":32,
                "placements":{"window":0.25,"interior":0.6,"outdoor":0.15}}"#,
        )
        .unwrap();
        assert_eq!(omitted, spelled);
        assert_eq!(omitted.hash(), spelled.hash());
        assert_eq!(omitted.canonical_json(), spelled.canonical_json());
    }

    #[test]
    fn op_tracker_engine_and_shard_size_separate_hashes() {
        let base = parse(Op::WhatIf, "{}").unwrap();
        assert_ne!(base.hash(), parse(Op::Compare, "{}").unwrap().hash());
        assert_ne!(
            base.hash(),
            parse(Op::WhatIf, r#"{"tracker":"oracle"}"#).unwrap().hash()
        );
        assert_ne!(
            base.hash(),
            parse(Op::WhatIf, r#"{"engine":"per-node"}"#)
                .unwrap()
                .hash()
        );
        assert_ne!(
            base.hash(),
            parse(Op::WhatIf, r#"{"shard_size":16}"#).unwrap().hash()
        );
        // ... but none of those change the spec hash.
        for body in [r#"{"tracker":"oracle"}"#, r#"{"engine":"per-node"}"#] {
            assert_eq!(
                base.spec_hash(),
                parse(Op::Compare, body).unwrap().spec_hash()
            );
        }
        // Spec fields do change the spec hash.
        assert_ne!(
            base.spec_hash(),
            parse(Op::WhatIf, r#"{"seed":7}"#).unwrap().spec_hash()
        );
    }

    #[test]
    fn rejects_unknown_fields_and_bad_values() {
        assert!(parse(Op::WhatIf, r#"{"nodez":5}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"nodes":0}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"nodes":10001}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"tracker":"warp"}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"engine":"gpu"}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"tolerances":"loose"}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"dt_s":0}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"dt_s":"fast"}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"trace_decimate":0}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"shard_size":0}"#).is_err());
        assert!(parse(Op::WhatIf, r#"{"placements":{"roof":1}}"#).is_err());
        assert!(parse(
            Op::WhatIf,
            r#"{"placements":{"window":0,"interior":0,"outdoor":0}}"#
        )
        .is_err());
        assert!(parse(Op::WhatIf, "[]").is_err());
    }

    #[test]
    fn to_spec_matches_the_request() {
        let r = parse(Op::WhatIf, r#"{"nodes":24,"seed":9,"tolerances":"none"}"#).unwrap();
        let spec = r.to_spec().unwrap();
        assert_eq!(spec.nodes, 24);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.tolerances, Tolerances::none());
        assert_eq!(spec.dt.value(), 600.0);
        assert!(spec.validate().is_ok());
    }

    fn parse_campaign(body: &str) -> Result<CampaignRequest, ServeError> {
        CampaignRequest::from_json(&Json::parse(body).unwrap(), 10_000)
    }

    #[test]
    fn campaign_defaults_fill_an_empty_body() {
        let r = parse_campaign("{}").unwrap();
        assert_eq!(r.nodes, 48);
        assert_eq!(r.seed, 2011);
        assert_eq!(r.days, 91);
        assert_eq!(r.epoch_days, 13);
        assert_eq!(r.climate, Climate::Temperate);
        assert_eq!(r.load, LoadClass::DutyCycledRadio);
        assert!(r.drift);
        assert_eq!(r.fault_probability, 0.15);
        assert_eq!(r.shard_size, 32);
        assert!(r.to_spec().validate().is_ok());
    }

    #[test]
    fn campaign_explicit_defaults_hash_like_omitted_defaults() {
        let omitted = parse_campaign("{}").unwrap();
        let spelled = parse_campaign(
            r#"{"nodes":48,"seed":2011,"days":91,"epoch_days":13,"latitude":52,
                "climate":"temperate","load":"radio","tracker":"focv","engine":"batch",
                "drift":true,"fault_probability":0.15,"dt_s":600,"shard_size":32}"#,
        )
        .unwrap();
        assert_eq!(omitted, spelled);
        assert_eq!(omitted.hash(), spelled.hash());
    }

    #[test]
    fn campaign_hash_never_collides_with_whatif() {
        // Same knobs where they overlap; the op member keeps the keys
        // disjoint.
        let campaign = parse_campaign(r#"{"nodes":100}"#).unwrap();
        let whatif = parse(Op::WhatIf, r#"{"nodes":100}"#).unwrap();
        assert_ne!(campaign.hash(), whatif.hash());
        assert!(campaign.canonical_json().contains("\"op\":\"campaign\""));
    }

    #[test]
    fn campaign_rejects_unknown_fields_and_bad_values() {
        assert!(parse_campaign(r#"{"dayz":5}"#).is_err());
        assert!(parse_campaign(r#"{"nodes":0}"#).is_err());
        assert!(parse_campaign(r#"{"days":0}"#).is_err());
        assert!(parse_campaign(r#"{"days":4000}"#).is_err());
        assert!(parse_campaign(r#"{"epoch_days":0}"#).is_err());
        assert!(parse_campaign(r#"{"epoch_days":92}"#).is_err());
        assert!(parse_campaign(r#"{"climate":"hurricane"}"#).is_err());
        assert!(parse_campaign(r#"{"load":"toaster"}"#).is_err());
        assert!(parse_campaign(r#"{"latitude":80}"#).is_err());
        assert!(parse_campaign(r#"{"fault_probability":1.5}"#).is_err());
        assert!(
            parse_campaign(r#"{"dt_s":7}"#).is_err(),
            "dt must divide the day"
        );
        assert!(parse_campaign(r#"{"shard_size":0}"#).is_err());
        assert!(parse_campaign("[]").is_err());
    }

    #[test]
    fn campaign_to_spec_carries_every_field() {
        let r = parse_campaign(
            r#"{"nodes":20,"seed":7,"days":30,"epoch_days":10,"latitude":15,
                "climate":"monsoon","load":"motor","drift":false,
                "fault_probability":0,"dt_s":1800}"#,
        )
        .unwrap();
        let spec = r.to_spec();
        assert_eq!(spec.nodes, 20);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.days, 30);
        assert_eq!(spec.epoch_days, 10);
        assert_eq!(spec.climate, Climate::MonsoonSeason);
        assert_eq!(spec.load, LoadClass::IntermittentMotor);
        assert_eq!(spec.drift, DriftRates::none());
        assert_eq!(spec.faults.probability, 0.0);
        assert_eq!(spec.dt.value(), 1800.0);
        assert!(spec.validate().is_ok());
    }
}
