//! The compute side of the service: shared prepared contexts, the
//! three operations, and deterministic response rendering.
//!
//! A [`ComputeEngine`] owns the sized [`FleetRunner`], the **context
//! cache** (spec hash → [`FleetContext`], so requests differing only
//! in tracker/engine reuse one stamped population and warmed surface
//! pool), and the [`SpillStore`] for streaming campaigns. Responses
//! are rendered through [`Json::to_canonical_string`], so a recomputed
//! response is always byte-identical to its first rendering — the
//! property the response cache's correctness tests pin down.

use std::sync::{Arc, Mutex};

use eh_campaign::{CampaignReport, CampaignRunner};
use eh_fleet::{
    FleetContext, FleetError, FleetReport, FleetRunner, Percentiles, Placement, TrackerKind,
};
use eh_sim::Mergeable as _;

use crate::cache::LruCache;
use crate::checkpoint::SpillStore;
use crate::error::ServeError;
use crate::hash::hex;
use crate::json::Json;
use crate::metrics::{names, ServiceMetrics};
use crate::request::{CampaignRequest, WhatIfRequest};

/// Builds an object from `(&str, Json)` pairs.
fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn pct_json(p: Option<Percentiles>) -> Json {
    match p {
        None => Json::Null,
        Some(p) => obj(vec![
            ("p5", Json::Num(p.p5)),
            ("p50", Json::Num(p.p50)),
            ("p95", Json::Num(p.p95)),
        ]),
    }
}

/// Runs validated requests against the fleet layer.
#[derive(Debug)]
pub struct ComputeEngine {
    runner: FleetRunner,
    sim_workers: usize,
    contexts: Mutex<LruCache<u64, Arc<FleetContext>>>,
    spill: SpillStore,
    metrics: Arc<ServiceMetrics>,
}

impl ComputeEngine {
    /// An engine with `sim_workers` simulation threads, a context
    /// cache of `context_cache_capacity` prepared fleets, and spills
    /// under `spill_dir`.
    pub fn new(
        sim_workers: usize,
        context_cache_capacity: usize,
        spill_dir: impl Into<std::path::PathBuf>,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        Self {
            runner: FleetRunner::new(sim_workers),
            sim_workers,
            contexts: Mutex::new(LruCache::new(context_cache_capacity)),
            spill: SpillStore::new(spill_dir),
            metrics,
        }
    }

    /// The spill store (exposed for tests and the shutdown path).
    pub fn spill(&self) -> &SpillStore {
        &self.spill
    }

    /// The prepared context for a request's spec, deduplicated across
    /// requests by spec hash. Preparation runs outside the cache lock,
    /// so a slow stamp never blocks hits on other specs; the rare
    /// concurrent double-prepare is benign (both produce the identical
    /// context, last insert wins).
    fn context(&self, req: &WhatIfRequest) -> Result<Arc<FleetContext>, ServeError> {
        let key = req.spec_hash();
        if let Some(ctx) = self.lock_contexts().get(&key) {
            self.metrics.incr(names::CONTEXT_HITS);
            return Ok(ctx);
        }
        self.metrics.incr(names::CONTEXT_MISSES);
        let spec = req.to_spec()?;
        let ctx = Arc::new(FleetContext::prepare(&spec)?);
        self.metrics.with(|m| ctx.surface_pool().record_into(m));
        self.lock_contexts().insert(key, Arc::clone(&ctx));
        Ok(ctx)
    }

    fn lock_contexts(&self) -> std::sync::MutexGuard<'_, LruCache<u64, Arc<FleetContext>>> {
        self.contexts.lock().expect("context cache lock poisoned")
    }

    fn account(&self, report: &FleetReport) {
        self.metrics.add(names::SIM_NODES, report.nodes() as u64);
        if let Some(m) = report.metrics.clone() {
            self.metrics.absorb(m);
        }
    }

    /// One tracker over one fleet → the rendered response body.
    ///
    /// # Errors
    ///
    /// Propagates spec preparation and simulation failures.
    pub fn whatif(&self, req: &WhatIfRequest) -> Result<String, ServeError> {
        let ctx = self.context(req)?;
        let report = self
            .runner
            .with_shard_size(req.shard_size)
            .run_engine_prepared(&ctx, req.tracker, req.engine)?;
        self.account(&report);
        Ok(self.envelope(req, vec![("report", Self::summary(&report))]))
    }

    /// Every tracker over one fleet → the rendered response body, one
    /// summary per kind in [`TrackerKind::ALL`] order.
    ///
    /// # Errors
    ///
    /// As [`ComputeEngine::whatif`].
    pub fn compare(&self, req: &WhatIfRequest) -> Result<String, ServeError> {
        let ctx = self.context(req)?;
        let runner = self.runner.with_shard_size(req.shard_size);
        let mut trackers = Vec::with_capacity(TrackerKind::ALL.len());
        for kind in TrackerKind::ALL {
            let report = runner.run_engine_prepared(&ctx, kind, req.engine)?;
            self.account(&report);
            trackers.push(Self::summary(&report));
        }
        Ok(self.envelope(req, vec![("trackers", Json::Arr(trackers))]))
    }

    /// One tracker over one fleet, folded shard by shard: `emit` is
    /// called with one JSON line per completed shard (a running
    /// snapshot) and finally with the full response body. Completed
    /// shards spill to the checkpoint store as they finish, and a
    /// restarted campaign for the same request hash reloads them
    /// instead of recomputing; the spill directory is cleared after
    /// the final line is emitted.
    ///
    /// The shard fold reproduces [`FleetRunner`]'s merged report bit
    /// for bit at equal shard grouping (see
    /// [`FleetContext::simulate_shard`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for obs-carrying requests (metric
    /// stores have no spill encoding); otherwise as
    /// [`ComputeEngine::whatif`], plus whatever `emit` raises.
    pub fn stream(
        &self,
        req: &WhatIfRequest,
        emit: &mut dyn FnMut(&str) -> Result<(), ServeError>,
    ) -> Result<(), ServeError> {
        if req.obs {
            return Err(ServeError::Unsupported(
                "streaming obs campaigns (checkpoints cannot spill metric stores)",
            ));
        }
        let ctx = self.context(req)?;
        let request_hex = hex(req.hash());
        let population = ctx.population().to_vec();
        let shard_count = population.len().div_ceil(req.shard_size);
        let mut merged: Option<FleetReport> = None;
        for (idx, shard) in population.chunks(req.shard_size).enumerate() {
            let shard_report = match self.spill.load_shard(&request_hex, idx)? {
                Some(report) => {
                    self.metrics.incr(names::CHECKPOINT_LOADED);
                    report
                }
                None => {
                    let report = ctx.simulate_shard(req.tracker, req.engine, shard.to_vec())?;
                    self.account(&report);
                    self.spill.save_shard(&request_hex, idx, &report)?;
                    self.metrics.incr(names::CHECKPOINT_SAVED);
                    report
                }
            };
            match merged.as_mut() {
                None => merged = Some(shard_report),
                Some(m) => m.merge(shard_report),
            }
            let running = merged.as_ref().expect("just merged");
            let snapshot = obj(vec![
                ("shards_done", Json::Num((idx + 1) as f64)),
                ("shards", Json::Num(shard_count as f64)),
                ("nodes_done", Json::Num(running.nodes() as f64)),
                ("net_j", pct_json(running.net_energy_percentiles())),
            ]);
            emit(&snapshot.to_canonical_string())?;
        }
        let report = merged
            .ok_or(ServeError::Fleet(FleetError::EmptyFleet))?
            .with_fleet_counters();
        emit(&self.envelope(req, vec![("report", Self::summary(&report))]))?;
        self.spill.clear(&request_hex);
        Ok(())
    }

    /// One endurance campaign → the rendered response body. Campaigns
    /// prepare their own per-epoch contexts (epoch traces depend on the
    /// campaign calendar), so the what-if context cache is not involved;
    /// the response cache and single-flight table still apply upstream.
    ///
    /// # Errors
    ///
    /// Propagates campaign preparation and simulation failures.
    pub fn campaign(&self, req: &CampaignRequest) -> Result<String, ServeError> {
        let spec = req.to_spec();
        let report = CampaignRunner::new(self.sim_workers)
            .with_shard_size(req.shard_size)
            .run(&spec)?;
        self.metrics.add(names::SIM_NODES, report.nodes() as u64);
        self.metrics.with(|m| report.record_into(m));
        Ok(Self::render_envelope(
            &req.canonical_json(),
            req.hash(),
            vec![("report", Self::campaign_summary(&report))],
        ))
    }

    /// Wraps payload members with the canonical request echo and its
    /// hash, rendered canonically (deterministic bytes).
    fn envelope(&self, req: &WhatIfRequest, payload: Vec<(&str, Json)>) -> String {
        Self::render_envelope(&req.canonical_json(), req.hash(), payload)
    }

    fn render_envelope(canonical: &str, hash: u64, payload: Vec<(&str, Json)>) -> String {
        let request = Json::parse(canonical).expect("canonical request rendering is valid JSON");
        let mut members = vec![("request", request), ("request_hash", Json::Str(hex(hash)))];
        members.extend(payload);
        obj(members).to_canonical_string()
    }

    /// One campaign's summary object: identity, survival counts,
    /// survival/time-to-first-brownout/net-energy percentiles, and the
    /// per-placement survivor breakdown.
    fn campaign_summary(report: &CampaignReport) -> Json {
        let by_placement = Placement::ALL
            .into_iter()
            .map(|p| {
                (
                    p.label().to_owned(),
                    Json::Num(report.survivors_at(p) as f64),
                )
            })
            .collect();
        obj(vec![
            ("name", Json::Str(report.name.clone())),
            ("nodes", Json::Num(report.nodes() as f64)),
            ("days", Json::Num(f64::from(report.days))),
            ("survivors", Json::Num(report.survivors() as f64)),
            ("browned_out", Json::Num(report.browned_out() as f64)),
            ("faulted", Json::Num(report.faulted() as f64)),
            ("survival_days", pct_json(report.survival_percentiles())),
            (
                "time_to_first_brownout_days",
                pct_json(report.time_to_first_brownout_percentiles()),
            ),
            ("net_j", pct_json(report.net_energy_percentiles())),
            ("survivors_by_placement", Json::Obj(by_placement)),
        ])
    }

    /// One report's summary object: identity, percentiles, population
    /// counts, the worst-node drill-down, and the merged metric store
    /// when the request enabled obs.
    fn summary(report: &FleetReport) -> Json {
        let worst = match report.worst_node() {
            None => Json::Null,
            Some(w) => obj(vec![
                ("id", Json::Num(f64::from(w.id))),
                ("placement", Json::Str(w.placement.label().to_owned())),
                ("net_j", Json::Num(w.net_energy().value())),
                ("uptime", Json::Num(w.report.uptime().value())),
                ("cold_start_ok", Json::Bool(w.cold_start_ok)),
            ]),
        };
        let mut members = vec![
            ("name", Json::Str(report.name.clone())),
            ("tracker", Json::Str(report.tracker.clone())),
            ("nodes", Json::Num(report.nodes() as f64)),
            ("net_j", pct_json(report.net_energy_percentiles())),
            ("gross_j", pct_json(report.gross_energy_percentiles())),
            ("overhead_j", pct_json(report.overhead_percentiles())),
            ("compute_j", pct_json(report.compute_energy_percentiles())),
            ("brown_outs", Json::Num(report.brown_out_count() as f64)),
            (
                "cold_start_failures",
                Json::Num(report.cold_start_failures() as f64),
            ),
            (
                "net_negative",
                Json::Num(report.net_negative_count() as f64),
            ),
            ("worst_node", worst),
        ];
        if let Some(m) = report.metrics.as_ref() {
            members.push((
                "metrics",
                Json::parse(&m.to_json()).expect("obs exporter emits valid JSON"),
            ));
        }
        obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Op;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eh-serve-engine-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine() -> (ComputeEngine, Arc<ServiceMetrics>, PathBuf) {
        let metrics = Arc::new(ServiceMetrics::new());
        let dir = scratch_dir();
        (
            ComputeEngine::new(2, 4, &dir, Arc::clone(&metrics)),
            metrics,
            dir,
        )
    }

    fn request(op: Op, body: &str) -> WhatIfRequest {
        WhatIfRequest::from_json(op, &Json::parse(body).unwrap(), 10_000).unwrap()
    }

    #[test]
    fn whatif_is_deterministic_and_reuses_the_context() {
        let (engine, metrics, dir) = engine();
        let req = request(Op::WhatIf, r#"{"nodes":12}"#);
        let first = engine.whatif(&req).unwrap();
        let second = engine.whatif(&req).unwrap();
        assert_eq!(first, second, "recompute must be byte-identical");
        assert_eq!(metrics.counter(names::CONTEXT_MISSES), 1);
        assert_eq!(metrics.counter(names::CONTEXT_HITS), 1);
        assert_eq!(metrics.counter(names::SIM_NODES), 24);
        let parsed = Json::parse(&first).unwrap();
        assert_eq!(
            parsed.get("request_hash").and_then(Json::as_str),
            Some(hex(req.hash()).as_str())
        );
        assert!(parsed.get("report").unwrap().get("net_j").is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tracker_variants_share_one_prepared_context() {
        let (engine, metrics, dir) = engine();
        engine
            .whatif(&request(Op::WhatIf, r#"{"nodes":8,"tracker":"focv"}"#))
            .unwrap();
        engine
            .whatif(&request(Op::WhatIf, r#"{"nodes":8,"tracker":"oracle"}"#))
            .unwrap();
        assert_eq!(metrics.counter(names::CONTEXT_MISSES), 1);
        assert_eq!(metrics.counter(names::CONTEXT_HITS), 1);
        // The surface-pool accounting rode in with the one prepare.
        assert!(metrics.counter("fleet.surface_pool.warmed") > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compare_covers_every_tracker() {
        let (engine, _metrics, dir) = engine();
        let body = engine
            .compare(&request(Op::Compare, r#"{"nodes":6}"#))
            .unwrap();
        let parsed = Json::parse(&body).unwrap();
        let trackers = match parsed.get("trackers").unwrap() {
            Json::Arr(items) => items,
            other => panic!("trackers must be an array, got {other:?}"),
        };
        assert_eq!(trackers.len(), TrackerKind::ALL.len());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stream_final_report_matches_whatif() {
        let (engine, _metrics, dir) = engine();
        // Same fleet through both paths; only the op differs.
        let stream_req = request(Op::Stream, r#"{"nodes":12,"shard_size":5}"#);
        let whatif_req = request(Op::WhatIf, r#"{"nodes":12,"shard_size":5}"#);
        let mut lines = Vec::new();
        engine
            .stream(&stream_req, &mut |line| {
                lines.push(line.to_owned());
                Ok(())
            })
            .unwrap();
        assert_eq!(lines.len(), 4, "3 shard snapshots + final body");
        let final_report = Json::parse(lines.last().unwrap())
            .unwrap()
            .get("report")
            .unwrap()
            .to_canonical_string();
        let whatif_report = Json::parse(&engine.whatif(&whatif_req).unwrap())
            .unwrap()
            .get("report")
            .unwrap()
            .to_canonical_string();
        assert_eq!(
            final_report, whatif_report,
            "shard fold must reproduce the runner bit for bit"
        );
        // Snapshots carry running progress.
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("shards_done").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("shards").and_then(Json::as_u64), Some(3));
        assert_eq!(first.get("nodes_done").and_then(Json::as_u64), Some(5));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn interrupted_stream_resumes_from_checkpoints_bit_identically() {
        let (engine, metrics, dir) = engine();
        let req = request(Op::Stream, r#"{"nodes":12,"shard_size":4}"#);

        // Die after the second shard, as an abandoned campaign would.
        let mut emitted = 0;
        let died = engine.stream(&req, &mut |_line| {
            emitted += 1;
            if emitted == 2 {
                Err(ServeError::Io("client went away".into()))
            } else {
                Ok(())
            }
        });
        assert!(died.is_err());
        assert_eq!(metrics.counter(names::CHECKPOINT_SAVED), 2);

        // The restarted campaign reloads the finished shards...
        let mut lines = Vec::new();
        engine
            .stream(&req, &mut |line| {
                lines.push(line.to_owned());
                Ok(())
            })
            .unwrap();
        assert_eq!(metrics.counter(names::CHECKPOINT_LOADED), 2);
        assert_eq!(metrics.counter(names::CHECKPOINT_SAVED), 3);

        // ...and the resumed result is byte-identical to a fresh run.
        let (fresh_engine, _m, fresh_dir) = tests_fresh();
        let mut fresh = Vec::new();
        fresh_engine
            .stream(&req, &mut |line| {
                fresh.push(line.to_owned());
                Ok(())
            })
            .unwrap();
        assert_eq!(lines, fresh, "resume must not change a single byte");

        // The completed campaign cleared its spill directory.
        assert!(!engine.spill().campaign_dir(&hex(req.hash())).exists());
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(fresh_dir);
    }

    fn tests_fresh() -> (ComputeEngine, Arc<ServiceMetrics>, PathBuf) {
        engine()
    }

    #[test]
    fn campaign_is_deterministic_and_renders_survival() {
        let (engine, metrics, dir) = engine();
        let req = CampaignRequest::from_json(
            &Json::parse(r#"{"nodes":4,"days":6,"epoch_days":3,"dt_s":3600}"#).unwrap(),
            10_000,
        )
        .unwrap();
        let first = engine.campaign(&req).unwrap();
        let second = engine.campaign(&req).unwrap();
        assert_eq!(first, second, "recompute must be byte-identical");
        let parsed = Json::parse(&first).unwrap();
        assert_eq!(
            parsed.get("request_hash").and_then(Json::as_str),
            Some(hex(req.hash()).as_str())
        );
        let report = parsed.get("report").unwrap();
        assert_eq!(report.get("nodes").and_then(Json::as_u64), Some(4));
        assert_eq!(report.get("days").and_then(Json::as_u64), Some(6));
        assert!(report.get("survival_days").is_some());
        assert!(report.get("survivors_by_placement").is_some());
        assert_eq!(metrics.counter("campaign.nodes"), 8, "both runs recorded");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn obs_streams_are_refused() {
        let (engine, _metrics, dir) = engine();
        let req = request(Op::Stream, r#"{"nodes":4,"obs":true}"#);
        let err = engine.stream(&req, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, ServeError::Unsupported(_)), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn obs_whatif_folds_the_ledger_into_service_metrics() {
        let (engine, metrics, dir) = engine();
        let body = engine
            .whatif(&request(Op::WhatIf, r#"{"nodes":4,"obs":true}"#))
            .unwrap();
        let parsed = Json::parse(&body).unwrap();
        assert!(
            parsed.get("report").unwrap().get("metrics").is_some(),
            "obs request must echo its merged metric store"
        );
        let rendered = metrics.render();
        assert!(rendered.contains("\"fleet.nodes\":4"), "{rendered}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
