//! A deterministic fleet-simulation service: what-if queries over
//! `eh-fleet` behind a dependency-free HTTP/1.1 front end.
//!
//! The fleet pipeline is deterministic end to end — a
//! [`eh_fleet::FleetReport`] is a pure function of `(spec, seed)` —
//! which turns aggressive serving-side reuse from a heuristic into a
//! theorem. This crate leans on that everywhere:
//!
//! - requests are validated and re-serialized as **canonical JSON**
//!   ([`json`]), so key order, whitespace and default spelling all
//!   collapse onto one FNV-1a cache key ([`hash`]);
//! - the **response cache** ([`cache::LruCache`]) serves repeats
//!   byte-identically (`X-Cache: hit`);
//! - concurrent identical misses coalesce onto one computation
//!   ([`singleflight`], `X-Cache: coalesced`);
//! - requests differing only in tracker/engine share one prepared
//!   [`eh_fleet::FleetContext`] through the spec-hash context cache;
//! - streaming campaigns checkpoint per shard ([`checkpoint`]) and
//!   resume bit-identically after a crash.
//!
//! Endpoints: `GET /healthz`, `GET /metrics` (the [`eh_obs`]-backed
//! live store), `POST /whatif`, `POST /compare` (all 11 trackers over
//! one fleet), `POST /whatif/stream` (chunked per-shard snapshots),
//! `POST /campaign` (multi-year endurance campaigns over `eh-campaign`),
//! `POST /admin/shutdown` (graceful drain).
//!
//! # Example
//!
//! ```
//! use eh_serve::{ServeConfig, Server};
//! use std::io::{Read as _, Write as _};
//!
//! let mut cfg = ServeConfig::default_local();
//! cfg.http_workers = 2;
//! cfg.sim_workers = 1;
//! let server = Server::spawn(cfg)?;
//! let mut conn = std::net::TcpStream::connect(server.addr())?;
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")?;
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply)?;
//! assert!(reply.ends_with("{\"ok\":true}"));
//! server.shutdown();
//! # Ok::<(), eh_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod envcfg;
mod error;
pub mod hash;
pub mod http;
pub mod json;
pub mod metrics;
pub mod request;
mod server;
pub mod singleflight;

pub use engine::ComputeEngine;
pub use error::ServeError;
pub use json::Json;
pub use metrics::ServiceMetrics;
pub use request::{CampaignRequest, Op, TolerancePreset, WhatIfRequest};
pub use server::{ServeConfig, Server};
