//! Single-flight request coalescing.
//!
//! When several identical what-if requests are in flight at once, only
//! one should pay for the simulation: the first caller for a key
//! becomes the **leader** and computes; everyone else arriving before
//! the leader publishes becomes a **follower** and blocks on the
//! flight's condvar until the shared result lands. Determinism is what
//! makes this safe to expose: the followers' bytes are exactly the
//! bytes the followers would have computed themselves.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// How a caller's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// This caller ran the computation.
    Leader,
    /// This caller waited on another caller's in-flight computation.
    Follower,
}

#[derive(Debug)]
struct Flight<V> {
    done: Mutex<Option<V>>,
    cv: Condvar,
}

/// Coalesces concurrent calls with equal keys onto one computation.
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty coalescing table.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, unless an identical call is already in
    /// flight — in that case, blocks until the leader publishes and
    /// returns the shared value. The leader's flight entry is removed
    /// before returning, so later calls start a fresh flight (the
    /// response cache, not this table, serves repeats).
    pub fn join(&self, key: K, compute: impl FnOnce() -> V) -> (V, FlightRole) {
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().expect("singleflight lock poisoned");
            match inflight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            let value = compute();
            {
                let mut done = flight.done.lock().expect("flight lock poisoned");
                *done = Some(value.clone());
            }
            flight.cv.notify_all();
            self.inflight
                .lock()
                .expect("singleflight lock poisoned")
                .remove(&key);
            (value, FlightRole::Leader)
        } else {
            let mut done = flight.done.lock().expect("flight lock poisoned");
            while done.is_none() {
                done = flight.cv.wait(done).expect("flight lock poisoned");
            }
            (
                done.clone().expect("loop exits only when published"),
                FlightRole::Follower,
            )
        }
    }

    /// How many flights are currently in progress.
    pub fn inflight(&self) -> usize {
        self.inflight
            .lock()
            .expect("singleflight lock poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn sequential_calls_each_lead() {
        let sf: SingleFlight<u64, u32> = SingleFlight::new();
        let (v, role) = sf.join(1, || 10);
        assert_eq!((v, role), (10, FlightRole::Leader));
        let (v, role) = sf.join(1, || 20);
        assert_eq!(
            (v, role),
            (20, FlightRole::Leader),
            "completed flights must not serve later calls"
        );
        assert_eq!(sf.inflight(), 0);
    }

    #[test]
    fn concurrent_identical_calls_coalesce_onto_one_computation() {
        let sf: SingleFlight<u64, u32> = SingleFlight::new();
        let computations = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, role) = sf.join(7, || {
                        // Hold the flight open long enough that the
                        // other threads arrive while it is in flight.
                        std::thread::sleep(Duration::from_millis(100));
                        computations.fetch_add(1, Ordering::SeqCst);
                        42
                    });
                    assert_eq!(v, 42);
                    if role == FlightRole::Follower {
                        followers.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let led = computations.load(Ordering::SeqCst);
        let followed = followers.load(Ordering::SeqCst);
        assert_eq!(led + followed, 8, "every caller got a value");
        assert!(led >= 1, "someone must compute");
        assert!(
            followed >= 1,
            "a 100 ms flight must coalesce at least one follower"
        );
        assert_eq!(sf.inflight(), 0, "flights drain after completion");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let sf = &sf;
                scope.spawn(move || {
                    let (v, role) = sf.join(k, || k * 10);
                    assert_eq!(v, k * 10);
                    assert_eq!(role, FlightRole::Leader);
                });
            }
        });
    }
}
