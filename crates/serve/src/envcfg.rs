//! Strict environment/CLI value parsing, shared by the service's
//! `EH_SERVE_*` variables and the bench bins' `EH_WORKERS`/`--workers`
//! overrides.
//!
//! An unparseable override used to be *silently ignored* by the bench
//! helpers, so `EH_WORKERS=lots` degraded to the auto-sized default and
//! a scaling study quietly measured the wrong configuration. Here a bad
//! value is a hard, named error: the caller learns which knob, which
//! value, and what was expected.

use std::error::Error;
use std::fmt;

/// A configuration value that failed strict parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// Where the value came from (`EH_WORKERS`, `--workers`, ...).
    pub source: String,
    /// The rejected raw value.
    pub raw: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {:?} for {}: expected {}",
            self.raw, self.source, self.expected
        )
    }
}

impl Error for EnvError {}

/// Parses a strictly positive `usize` (worker counts, queue and cache
/// capacities, shard sizes).
///
/// # Errors
///
/// Rejects empty, non-numeric and zero values, naming the source.
pub fn positive_usize(source: &str, raw: &str) -> Result<usize, EnvError> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| EnvError {
            source: source.to_owned(),
            raw: raw.to_owned(),
            expected: "a positive integer",
        })
}

/// Parses a `u64` (seeds).
///
/// # Errors
///
/// Rejects empty and non-numeric values, naming the source.
pub fn u64_value(source: &str, raw: &str) -> Result<u64, EnvError> {
    raw.trim().parse::<u64>().map_err(|_| EnvError {
        source: source.to_owned(),
        raw: raw.to_owned(),
        expected: "an unsigned integer",
    })
}

/// Looks up an environment variable and strictly parses it with
/// `parse` when present. Absence is `Ok(None)`; presence with a bad
/// value is the hard error the parser raises.
///
/// # Errors
///
/// Propagates the parser's [`EnvError`].
pub fn from_env<T>(
    name: &str,
    parse: impl FnOnce(&str, &str) -> Result<T, EnvError>,
) -> Result<Option<T>, EnvError> {
    match std::env::var(name) {
        Ok(raw) => parse(name, &raw).map(Some),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_usize_accepts_and_rejects() {
        assert_eq!(positive_usize("EH_WORKERS", "4"), Ok(4));
        assert_eq!(positive_usize("EH_WORKERS", " 16 "), Ok(16));
        for bad in ["0", "-1", "lots", "", "4.5"] {
            let err = positive_usize("EH_WORKERS", bad).unwrap_err();
            assert_eq!(err.source, "EH_WORKERS");
            assert_eq!(err.raw, bad);
            let msg = err.to_string();
            assert!(msg.contains("EH_WORKERS"), "{msg}");
            assert!(msg.contains("positive integer"), "{msg}");
        }
    }

    #[test]
    fn u64_value_accepts_and_rejects() {
        assert_eq!(u64_value("seed", "2011"), Ok(2011));
        assert!(u64_value("seed", "twenty").is_err());
        assert!(u64_value("seed", "-3").is_err());
    }

    #[test]
    fn from_env_distinguishes_absent_from_invalid() {
        // Absent: Ok(None), never an error.
        assert_eq!(
            from_env("EH_SERVE_TEST_UNSET_VAR", positive_usize),
            Ok(None)
        );
    }
}
