//! The HTTP service: bounded accept queue, worker pool, response
//! cache, single-flight coalescing, routing, graceful shutdown.
//!
//! Connections are accepted onto a bounded queue (overflow is shed
//! with `503` immediately, so a stampede degrades loudly instead of
//! stacking latency) and drained by a fixed worker pool. The what-if
//! endpoints run behind two layers of deduplication: the **response
//! cache** (canonical request hash → rendered body, `X-Cache: hit`)
//! and the **single-flight table** (concurrent identical misses share
//! one computation, `X-Cache: coalesced`); both are correct because
//! the fleet pipeline is deterministic — a cached or coalesced body is
//! byte-identical to the body a fresh computation would render.
//!
//! Shutdown (`POST /admin/shutdown`, or [`Server::shutdown`]) stops
//! accepting, lets the workers drain every queued connection, and only
//! then returns. Checkpoints need no extra flushing: the spill store
//! syncs each shard file as it completes.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::cache::LruCache;
use crate::engine::ComputeEngine;
use crate::envcfg;
use crate::error::ServeError;
use crate::hash::hex;
use crate::http::{self, ChunkedWriter, HttpRequest};
use crate::json::Json;
use crate::metrics::{names, ServiceMetrics};
use crate::request::{CampaignRequest, Op, WhatIfRequest};
use crate::singleflight::{FlightRole, SingleFlight};

/// Service configuration. Every field has a sensible local default;
/// [`ServeConfig::from_env`] overrides them from `EH_SERVE_*`
/// variables with strict parsing (a typoed value is a startup error,
/// never a silent default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads draining the connection queue.
    pub http_workers: usize,
    /// Simulation worker threads inside the fleet runner.
    pub sim_workers: usize,
    /// Bounded connection-queue capacity; overflow sheds with 503.
    pub queue_capacity: usize,
    /// Response-cache entries (canonical hash → body).
    pub response_cache_capacity: usize,
    /// Context-cache entries (spec hash → prepared fleet).
    pub context_cache_capacity: usize,
    /// Largest fleet a request may ask for.
    pub max_nodes: u32,
    /// Directory for streaming-campaign checkpoints.
    pub spill_dir: PathBuf,
}

impl ServeConfig {
    /// Local defaults: loopback ephemeral port, a small worker pool,
    /// and spills under the system temp directory.
    pub fn default_local() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2);
        Self {
            addr: "127.0.0.1:0".to_owned(),
            http_workers: 4,
            sim_workers: cores.min(8),
            queue_capacity: 64,
            response_cache_capacity: 256,
            context_cache_capacity: 8,
            max_nodes: 10_000,
            spill_dir: std::env::temp_dir().join("eh-serve-spill"),
        }
    }

    /// The defaults overridden by `EH_SERVE_ADDR`,
    /// `EH_SERVE_HTTP_WORKERS`, `EH_SERVE_SIM_WORKERS`,
    /// `EH_SERVE_QUEUE_CAPACITY`, `EH_SERVE_CACHE_CAPACITY`,
    /// `EH_SERVE_CONTEXT_CACHE_CAPACITY`, `EH_SERVE_MAX_NODES` and
    /// `EH_SERVE_SPILL_DIR`.
    ///
    /// # Errors
    ///
    /// A present-but-unparseable variable is a hard [`ServeError::Env`]
    /// naming the variable, the value and the expectation.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut cfg = Self::default_local();
        if let Ok(addr) = std::env::var("EH_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Some(v) = envcfg::from_env("EH_SERVE_HTTP_WORKERS", envcfg::positive_usize)? {
            cfg.http_workers = v;
        }
        if let Some(v) = envcfg::from_env("EH_SERVE_SIM_WORKERS", envcfg::positive_usize)? {
            cfg.sim_workers = v;
        }
        if let Some(v) = envcfg::from_env("EH_SERVE_QUEUE_CAPACITY", envcfg::positive_usize)? {
            cfg.queue_capacity = v;
        }
        if let Some(v) = envcfg::from_env("EH_SERVE_CACHE_CAPACITY", envcfg::positive_usize)? {
            cfg.response_cache_capacity = v;
        }
        if let Some(v) =
            envcfg::from_env("EH_SERVE_CONTEXT_CACHE_CAPACITY", envcfg::positive_usize)?
        {
            cfg.context_cache_capacity = v;
        }
        if let Some(v) = envcfg::from_env("EH_SERVE_MAX_NODES", envcfg::positive_usize)? {
            cfg.max_nodes = u32::try_from(v).map_err(|_| envcfg::EnvError {
                source: "EH_SERVE_MAX_NODES".to_owned(),
                raw: v.to_string(),
                expected: "a positive integer fitting u32",
            })?;
        }
        if let Ok(dir) = std::env::var("EH_SERVE_SPILL_DIR") {
            cfg.spill_dir = PathBuf::from(dir);
        }
        Ok(cfg)
    }
}

struct ServerState {
    config: ServeConfig,
    addr: SocketAddr,
    metrics: Arc<ServiceMetrics>,
    engine: ComputeEngine,
    responses: Mutex<LruCache<u64, String>>,
    flights: SingleFlight<u64, Result<String, ServeError>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// A running service instance.
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service: one accept thread plus
    /// `http_workers` request workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServiceMetrics::new());
        let engine = ComputeEngine::new(
            config.sim_workers,
            config.context_cache_capacity,
            &config.spill_dir,
            Arc::clone(&metrics),
        );
        let response_cache_capacity = config.response_cache_capacity;
        let state = Arc::new(ServerState {
            config,
            addr,
            metrics,
            engine,
            responses: Mutex::new(LruCache::new(response_cache_capacity)),
            flights: SingleFlight::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let workers = (0..state.config.http_workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("eh-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawning a worker thread")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("eh-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))
            .expect("spawning the accept thread");

        Ok(Server {
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The live metric store.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Signals shutdown without waiting: accepting stops, queued
    /// connections keep draining.
    pub fn initiate_shutdown(&self) {
        trigger_shutdown(&self.state);
    }

    /// Waits for the accept thread and every worker to finish (after a
    /// shutdown was initiated here or via `POST /admin/shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain the queue, return.
    pub fn shutdown(self) {
        self.initiate_shutdown();
        self.join();
    }
}

fn trigger_shutdown(state: &ServerState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // Unblock the accept loop with a throwaway self-connection.
    let _ = TcpStream::connect(state.addr);
    state.queue_cv.notify_all();
}

fn accept_loop(listener: &TcpListener, state: &ServerState) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        state.metrics.incr(names::HTTP_CONNECTIONS);
        let mut queue = state.queue.lock().expect("queue lock poisoned");
        if queue.len() >= state.config.queue_capacity {
            drop(queue);
            state.metrics.incr(names::HTTP_SHED);
            state.metrics.count_status(503);
            let mut stream = stream;
            // Swallow whatever request bytes are already in flight so
            // the close after the 503 sends FIN, not RST — an RST can
            // destroy the response before the client has read it.
            drain_briefly(&stream);
            let _ = http::write_response(
                &mut stream,
                503,
                &[],
                error_body("connection queue full").as_bytes(),
            );
            continue;
        }
        queue.push_back(stream);
        state.metrics.gauge(names::QUEUE_DEPTH, queue.len() as f64);
        drop(queue);
        state.queue_cv.notify_one();
    }
    // Wake every worker so the drain-and-exit check runs.
    state.queue_cv.notify_all();
}

/// Bounded best-effort read of pending request bytes on a connection
/// that is being shed. Capped at a few reads with a short timeout so a
/// hostile slow sender cannot stall the accept loop.
fn drain_briefly(mut stream: &TcpStream) {
    use std::io::Read as _;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    for _ in 0..4 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().expect("queue lock poisoned");
            loop {
                // Drain before honouring shutdown: queued clients were
                // accepted and must be answered.
                if let Some(s) = queue.pop_front() {
                    state.metrics.gauge(names::QUEUE_DEPTH, queue.len() as f64);
                    break Some(s);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.queue_cv.wait(queue).expect("queue lock poisoned");
            }
        };
        let Some(mut stream) = stream else { return };
        handle_connection(state, &mut stream);
    }
}

/// A `{"error": ...}` body with proper JSON escaping.
fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_owned(), Json::Str(message.to_owned()))]).to_canonical_string()
}

fn respond(
    state: &ServerState,
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    state.metrics.count_status(status);
    let _ = http::write_response(stream, status, extra_headers, body.as_bytes());
}

fn handle_connection(state: &ServerState, stream: &mut TcpStream) {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.count_status(e.status);
            let _ = http::write_response(stream, e.status, &[], error_body(&e.message).as_bytes());
            return;
        }
    };
    route(state, stream, &request);
}

const ROUTES: [&str; 7] = [
    "/healthz",
    "/metrics",
    "/whatif",
    "/compare",
    "/whatif/stream",
    "/campaign",
    "/admin/shutdown",
];

fn route(state: &ServerState, stream: &mut TcpStream, request: &HttpRequest) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => respond(state, stream, 200, &[], "{\"ok\":true}"),
        ("GET", "/metrics") => {
            let body = state.metrics.render();
            respond(state, stream, 200, &[], &body);
        }
        ("POST", "/whatif") => cached_op(state, stream, Op::WhatIf, &request.body),
        ("POST", "/compare") => cached_op(state, stream, Op::Compare, &request.body),
        ("POST", "/whatif/stream") => stream_op(state, stream, &request.body),
        ("POST", "/campaign") => campaign_op(state, stream, &request.body),
        ("POST", "/admin/shutdown") => {
            respond(state, stream, 200, &[], "{\"draining\":true}");
            trigger_shutdown(state);
        }
        (_, target) if ROUTES.contains(&target) => {
            respond(state, stream, 405, &[], &error_body("method not allowed"));
        }
        _ => respond(state, stream, 404, &[], &error_body("unknown route")),
    }
}

fn parse_request_body(
    state: &ServerState,
    op: Op,
    body: &[u8],
) -> Result<WhatIfRequest, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body must be UTF-8".to_owned()))?;
    let json = Json::parse(text).map_err(ServeError::BadRequest)?;
    WhatIfRequest::from_json(op, &json, state.config.max_nodes)
}

/// The `/whatif` and `/compare` path: response cache, then
/// single-flight, then compute; `X-Cache` reports which layer served
/// the bytes while the bodies stay byte-identical across all three.
fn cached_op(state: &ServerState, stream: &mut TcpStream, op: Op, body: &[u8]) {
    let req = match parse_request_body(state, op, body) {
        Ok(r) => r,
        Err(e) => {
            respond(state, stream, e.status(), &[], &error_body(&e.to_string()));
            return;
        }
    };
    let key = req.hash();
    serve_cached(state, stream, key, || match op {
        Op::WhatIf => state.engine.whatif(&req),
        Op::Compare => state.engine.compare(&req),
        Op::Stream => unreachable!("stream requests never enter the cached path"),
    });
}

/// The `/campaign` path: same cache/single-flight layers as the what-if
/// endpoints — valid because a campaign report is as deterministic as a
/// fleet report — keyed by the campaign request's own canonical hash
/// (its `"op":"campaign"` member keeps the key spaces disjoint).
fn campaign_op(state: &ServerState, stream: &mut TcpStream, body: &[u8]) {
    let req = match std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body must be UTF-8".to_owned()))
        .and_then(|text| Json::parse(text).map_err(ServeError::BadRequest))
        .and_then(|json| CampaignRequest::from_json(&json, state.config.max_nodes))
    {
        Ok(r) => r,
        Err(e) => {
            respond(state, stream, e.status(), &[], &error_body(&e.to_string()));
            return;
        }
    };
    let key = req.hash();
    serve_cached(state, stream, key, || state.engine.campaign(&req));
}

/// Serves one cacheable request: response cache, then single-flight,
/// then `compute`; leaders populate the cache, followers reuse the
/// leader's bytes.
fn serve_cached(
    state: &ServerState,
    stream: &mut TcpStream,
    key: u64,
    compute: impl FnOnce() -> Result<String, ServeError>,
) {
    let request_hash = hex(key);

    if let Some(cached) = state
        .responses
        .lock()
        .expect("response cache lock poisoned")
        .get(&key)
    {
        state.metrics.incr(names::CACHE_HITS);
        respond(
            state,
            stream,
            200,
            &[("x-cache", "hit"), ("x-request-hash", &request_hash)],
            &cached,
        );
        return;
    }
    state.metrics.incr(names::CACHE_MISSES);

    let (result, role) = state.flights.join(key, compute);
    match result {
        Ok(response) => {
            let cache_status = match role {
                FlightRole::Leader => {
                    state.metrics.incr(names::SF_LEADER);
                    let evicted = state
                        .responses
                        .lock()
                        .expect("response cache lock poisoned")
                        .insert(key, response.clone());
                    if evicted {
                        state.metrics.incr(names::CACHE_EVICTIONS);
                    }
                    "miss"
                }
                FlightRole::Follower => {
                    state.metrics.incr(names::SF_COALESCED);
                    "coalesced"
                }
            };
            respond(
                state,
                stream,
                200,
                &[("x-cache", cache_status), ("x-request-hash", &request_hash)],
                &response,
            );
        }
        Err(e) => respond(state, stream, e.status(), &[], &error_body(&e.to_string())),
    }
}

/// The `/whatif/stream` path: chunked newline-delimited JSON, one line
/// per completed shard plus the final response body. Not cached or
/// coalesced — each campaign owns its checkpoint lifecycle.
fn stream_op(state: &ServerState, stream: &mut TcpStream, body: &[u8]) {
    let req = match parse_request_body(state, Op::Stream, body) {
        Ok(r) => r,
        Err(e) => {
            respond(state, stream, e.status(), &[], &error_body(&e.to_string()));
            return;
        }
    };
    if req.obs {
        // Refuse before committing to a 200 chunked response; the
        // engine enforces the same rule as defense in depth.
        let e = ServeError::Unsupported(
            "streaming obs campaigns (checkpoints cannot spill metric stores)",
        );
        respond(state, stream, e.status(), &[], &error_body(&e.to_string()));
        return;
    }
    let request_hash = hex(req.hash());
    state.metrics.count_status(200);
    let mut writer = match ChunkedWriter::start(stream, &[("x-request-hash", &request_hash)]) {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut emit = |line: &str| -> Result<(), ServeError> {
        let mut chunk = line.as_bytes().to_vec();
        chunk.push(b'\n');
        writer.write_chunk(&chunk).map_err(ServeError::from)
    };
    match state.engine.stream(&req, &mut emit) {
        Ok(()) => {
            let _ = writer.finish();
        }
        Err(e) => {
            // The 200 head is committed; surface the failure in-band.
            let mut line = error_body(&e.to_string()).into_bytes();
            line.push(b'\n');
            let _ = writer.write_chunk(&line);
            let _ = writer.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default_local();
        assert!(cfg.http_workers >= 1);
        assert!(cfg.sim_workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.max_nodes >= 1000);
        assert_eq!(cfg.addr, "127.0.0.1:0");
    }

    #[test]
    fn from_env_without_overrides_matches_defaults() {
        // The test environment does not set EH_SERVE_*; from_env must
        // then reproduce the defaults (addr and capacities).
        let cfg = ServeConfig::from_env().unwrap();
        let defaults = ServeConfig::default_local();
        assert_eq!(cfg.addr, defaults.addr);
        assert_eq!(cfg.queue_capacity, defaults.queue_capacity);
        assert_eq!(cfg.max_nodes, defaults.max_nodes);
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body("a \"quoted\" message\nwith newline");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("a \"quoted\" message\nwith newline")
        );
    }
}
