//! A dependency-free JSON value, parser and **canonical** writer.
//!
//! The serving layer's cache correctness rests on requests hashing to
//! the same key whenever they *mean* the same thing. That property is
//! delivered here: any JSON document parses into a [`Json`] tree, and
//! [`Json::to_canonical_string`] renders the tree with object keys
//! sorted bytewise, no insignificant whitespace, and every number in
//! Rust's shortest-round-trip `f64` form — so two spellings of one
//! request (key order, whitespace, `1e3` vs `1000.0`) serialize, and
//! therefore hash, identically.
//!
//! The parser is strict where it matters for canonicalization: it
//! rejects duplicate object keys (two spellings of a duplicate-keyed
//! document could otherwise canonicalize differently), non-finite
//! numbers, and documents nested deeper than [`MAX_DEPTH`].

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; deeper documents are
/// hostile or broken, and recursion must stay bounded.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Object members keep their parse order; the
/// canonical writer sorts them on the way out.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as `(key, value)` members in parse order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (safe to echo in a 400
    /// response) on malformed input, duplicate object keys, non-finite
    /// numbers, trailing garbage, or excessive nesting.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders the canonical form: object keys sorted bytewise, no
    /// whitespace, numbers in shortest-round-trip form. Equal values
    /// always render byte-identically.
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                // `{:?}` is Rust's shortest round-trip rendering; it
                // never produces a non-JSON token for finite inputs.
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                let mut order: Vec<usize> = (0..members.len()).collect();
                order.sort_by(|&a, &b| members[a].0.cmp(&members[b].0));
                out.push('{');
                for (i, &idx) in order.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, &members[idx].0);
                    out.push(':');
                    members[idx].1.write_canonical(out);
                }
                out.push('}');
            }
        }
    }

    /// The member of an object by key, if this is an object containing
    /// it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007199254740992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes and quotes a string per JSON (control characters as
/// `\u00XX`, the two mandatory specials as two-character escapes).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number bytes are ASCII");
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => Err(format!("number out of range at byte {start}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err("unpaired surrogate".to_owned());
                            }
                        } else if (0xdc00..0xe000).contains(&hi) {
                            return Err("unpaired surrogate".to_owned());
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "invalid codepoint".to_owned())?,
                        );
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("unescaped control character in string".to_owned()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so bytes
                // are valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_owned())?;
    let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_owned())?;
    u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_owned())
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate object key {key:?}"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_canonicalizes_the_kitchen_sink() {
        let doc = r#" { "b" : [1, 2.5, -3e2, true, false, null],
                        "a" : { "nested" : "va\"lue\n" } } "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.to_canonical_string(),
            "{\"a\":{\"nested\":\"va\\\"lue\\u000a\"},\"b\":[1.0,2.5,-300.0,true,false,null]}"
        );
    }

    #[test]
    fn key_order_and_whitespace_do_not_change_the_canonical_form() {
        let a = Json::parse(r#"{"x":1,"y":{"p":2,"q":3}}"#).unwrap();
        let b = Json::parse(" {\n\t\"y\" : { \"q\" :3, \"p\": 2 },\r\n \"x\": 1e0 } ").unwrap();
        assert_eq!(a.to_canonical_string(), b.to_canonical_string());
    }

    #[test]
    fn rejects_duplicates_garbage_and_depth() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1e999").is_err(), "infinite numbers rejected");
        assert!(Json::parse("\"\u{7}\"").is_err(), "raw control rejected");
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""aA\té😀\/""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\u{e9}\u{1F600}/"));
        // Canonical form re-escapes only what JSON requires.
        assert_eq!(v.to_canonical_string(), "\"aA\\u0009\u{e9}\u{1F600}/\"");
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[1],"big":1e300,"neg":-1}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("big").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert!(v.get("a").unwrap().as_obj().is_none());
        assert_eq!(v.as_obj().unwrap().len(), 6);
        assert_eq!(Json::Num(2.5).as_f64(), Some(2.5));
    }

    #[test]
    fn canonical_parse_is_a_fixed_point() {
        let doc = r#"{"z":[{"k":1.5},"two",null],"a":true}"#;
        let canon = Json::parse(doc).unwrap().to_canonical_string();
        let again = Json::parse(&canon).unwrap().to_canonical_string();
        assert_eq!(canon, again);
    }
}
