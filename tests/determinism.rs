//! Reproducibility: every stochastic element is seeded, so identical
//! configurations must give bit-identical results across the full stack.

use pv_mppt_repro::core::baselines::FocvSampleHold;
use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig};
use pv_mppt_repro::env::profiles;
use pv_mppt_repro::node::{NodeSimulation, SimConfig};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::sim::{drive, Light, SimError, StepInput, StepOutput, Stepper, SweepRunner};
use pv_mppt_repro::units::{Lux, Seconds};

#[test]
fn profiles_are_seed_deterministic() {
    for seed in [0u64, 1, 42, u64::MAX] {
        assert_eq!(
            profiles::office_desk_mixed(seed),
            profiles::office_desk_mixed(seed)
        );
        assert_eq!(
            profiles::semi_mobile_friday(seed),
            profiles::semi_mobile_friday(seed)
        );
        assert_eq!(
            profiles::desk_weekend_blinds_closed(seed),
            profiles::desk_weekend_blinds_closed(seed)
        );
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        profiles::office_desk_mixed(1).values(),
        profiles::office_desk_mixed(2).values()
    );
}

#[test]
fn full_system_runs_identically() {
    let run = || {
        let mut sys =
            FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid prototype"))
                .expect("valid system");
        sys.run_constant(Lux::new(777.0), Seconds::new(100.0), Seconds::new(0.03))
            .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.pulses, b.pulses);
    assert_eq!(a.final_held_sample, b.final_held_sample);
    assert_eq!(a.stored_energy, b.stored_energy);
    assert_eq!(a.average_metrology_current, b.average_metrology_current);
}

#[test]
fn node_simulation_runs_identically() {
    let trace = profiles::semi_mobile_friday(5)
        .decimate(60)
        .expect("decimate succeeds");
    let run = || {
        let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
            .expect("valid config");
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        sim.run(&mut tracker, &trace, Seconds::new(60.0))
            .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.gross_energy, b.gross_energy);
    assert_eq!(a.overhead_energy, b.overhead_energy);
    assert_eq!(a.measurements, b.measurements);
}

/// The sweep runner must return bit-identical, input-ordered results no
/// matter how many workers split the scenarios.
#[test]
fn sweep_identical_at_any_worker_count() {
    let intensities: Vec<f64> = (1..=16).map(|i| 150.0 * i as f64).collect();
    let job = |_: usize, lux: f64| {
        let mut sys =
            FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid prototype"))
                .expect("valid system");
        let report = sys
            .run_constant(Lux::new(lux), Seconds::new(80.0), Seconds::new(0.05))
            .expect("run succeeds");
        (
            report.pulses,
            report.final_held_sample,
            report.stored_energy,
            report.average_metrology_current,
        )
    };
    let serial = SweepRunner::new(1).run(intensities.clone(), job);
    for workers in [2, 4, 16] {
        let parallel = SweepRunner::new(workers).run(intensities.clone(), job);
        assert_eq!(serial, parallel, "sweep diverged at {workers} workers");
    }
}

/// Cached sweeps must be bit-identical across worker counts: the jobs
/// share one pre-warmed interpolation table (cloning a warmed cell shares
/// the surface), and pure table lookups carry no thread-dependent state.
#[test]
fn cached_sweep_identical_at_any_worker_count() {
    let cell = presets::sanyo_am1815().with_cache(true);
    cell.cached().expect("surface builds");
    let intensities: Vec<f64> = (1..=8).map(|i| 200.0 * i as f64).collect();
    let job = move |_: usize, lux: f64| {
        let cfg = SimConfig::default_for(cell.clone())
            .expect("valid config")
            .with_pv_cache(true);
        let mut sim = NodeSimulation::new(cfg).expect("valid sim");
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        let trace = profiles::constant(Lux::new(lux), Seconds::from_minutes(10.0));
        let report = sim
            .run(&mut tracker, &trace, Seconds::new(1.0))
            .expect("run succeeds");
        (
            report.gross_energy.value().to_bits(),
            report.overhead_energy.value().to_bits(),
            report.measurements,
        )
    };
    let serial = SweepRunner::new(1).run(intensities.clone(), &job);
    for workers in [2, 4] {
        let parallel = SweepRunner::new(workers).run(intensities.clone(), &job);
        assert_eq!(
            serial, parallel,
            "cached sweep diverged at {workers} workers"
        );
    }
}

/// A measurement step that returns a short dwell advances the engine
/// clock by exactly that dwell, not the planned dt.
#[test]
fn dwell_accounting_advances_by_actual_dwell() {
    struct DwellEveryFifth {
        steps: usize,
        advanced: f64,
    }
    impl Stepper for DwellEveryFifth {
        type Error = SimError;
        fn step(
            &mut self,
            _t: Seconds,
            dt: Seconds,
            _input: &StepInput,
        ) -> Result<StepOutput, SimError> {
            self.steps += 1;
            let out = if self.steps.is_multiple_of(5) {
                // 39 ms PULSE-style dwell, far shorter than the planned dt.
                StepOutput::dwell(Seconds::from_milli(2.0).min(dt))
            } else {
                StepOutput::full(dt)
            };
            self.advanced += out.advanced.value();
            Ok(out)
        }
    }

    let mut stepper = DwellEveryFifth {
        steps: 0,
        advanced: 0.0,
    };
    let total = drive(
        &mut stepper,
        &Light::constant(Lux::new(500.0), Seconds::new(1.0)),
        Seconds::from_milli(10.0),
    )
    .expect("drive succeeds");
    // The engine clock is the sum of the per-step advances…
    assert!((total.value() - stepper.advanced).abs() < 1e-12);
    // …and short dwells mean more steps than total/dt would suggest.
    assert!(stepper.steps > 100, "only {} steps", stepper.steps);
    // Every fifth step advanced 2 ms instead of 10 ms, so the run needs
    // 1 s / (4·10 ms + 2 ms per 5 steps) ≈ 119 full cycles of 5.
    assert!((total.value() - 1.0).abs() < 0.01);
}
