//! Reproducibility: every stochastic element is seeded, so identical
//! configurations must give bit-identical results across the full stack.

use pv_mppt_repro::core::baselines::FocvSampleHold;
use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig};
use pv_mppt_repro::env::profiles;
use pv_mppt_repro::node::{NodeSimulation, SimConfig};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Lux, Seconds};

#[test]
fn profiles_are_seed_deterministic() {
    for seed in [0u64, 1, 42, u64::MAX] {
        assert_eq!(
            profiles::office_desk_mixed(seed),
            profiles::office_desk_mixed(seed)
        );
        assert_eq!(
            profiles::semi_mobile_friday(seed),
            profiles::semi_mobile_friday(seed)
        );
        assert_eq!(
            profiles::desk_weekend_blinds_closed(seed),
            profiles::desk_weekend_blinds_closed(seed)
        );
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        profiles::office_desk_mixed(1).values(),
        profiles::office_desk_mixed(2).values()
    );
}

#[test]
fn full_system_runs_identically() {
    let run = || {
        let mut sys =
            FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid prototype"))
                .expect("valid system");
        sys.run_constant(Lux::new(777.0), Seconds::new(100.0), Seconds::new(0.03))
            .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.pulses, b.pulses);
    assert_eq!(a.final_held_sample, b.final_held_sample);
    assert_eq!(a.stored_energy, b.stored_energy);
    assert_eq!(a.average_metrology_current, b.average_metrology_current);
}

#[test]
fn node_simulation_runs_identically() {
    let trace = profiles::semi_mobile_friday(5).decimate(60).expect("decimate succeeds");
    let run = || {
        let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()))
            .expect("valid config");
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        sim.run(&mut tracker, &trace, Seconds::new(60.0))
            .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.gross_energy, b.gross_energy);
    assert_eq!(a.overhead_energy, b.overhead_energy);
    assert_eq!(a.measurements, b.measurements);
}
