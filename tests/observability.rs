//! Cross-crate integration for the eh-obs metrics layer: opt-in
//! recording through the facade at circuit, node and fleet scale, the
//! energy-ledger conservation invariant, and the exporters.

use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig};
use pv_mppt_repro::fleet::{FleetRunner, FleetSpec};
use pv_mppt_repro::node::{DutyCycledLoad, NodeSimulation, SimConfig};
use pv_mppt_repro::obs::{EnergyBucket, Metrics, Recorder};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Joules, Lux, Seconds};

/// The circuit layer records pulses, cold-start events and the
/// metrology energy split — and only when asked to.
#[test]
fn circuit_metrics_through_the_facade() {
    let mut cfg = SystemConfig::paper_prototype().expect("paper constants");
    cfg.obs = true;
    let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
    let report = sys
        .run_constant(Lux::new(1000.0), Seconds::new(120.0), Seconds::new(0.05))
        .expect("run completes");
    let metrics = sys.take_metrics().expect("obs run collects metrics");
    assert_eq!(metrics.counter("core.pulses"), report.pulses);
    assert_eq!(metrics.counter("core.rail_up"), 1);
    assert!(metrics.ledger().energy(EnergyBucket::Astable).value() > 0.0);

    let mut plain = FocvMpptSystem::new(SystemConfig::paper_prototype().expect("paper constants"))
        .expect("valid system");
    plain
        .run_constant(Lux::new(1000.0), Seconds::new(120.0), Seconds::new(0.05))
        .expect("run completes");
    assert!(plain.take_metrics().is_none(), "metrics are opt-in");
}

/// A node-day run conserves energy across the five ledger buckets and
/// both exporters render every section.
#[test]
fn node_ledger_conserves_and_exports() {
    let cell = presets::sanyo_am1815();
    let trace = pv_mppt_repro::env::profiles::office_desk_mixed(7)
        .decimate(60)
        .expect("decimates");
    let cfg = SimConfig::default_for(cell)
        .expect("valid config")
        .with_load(DutyCycledLoad::typical_sensor_node().expect("valid load"))
        .with_obs(true);
    let mut sim = NodeSimulation::new(cfg).expect("valid sim");
    let mut tracker =
        pv_mppt_repro::core::baselines::FocvSampleHold::paper_prototype().expect("paper constants");
    let report = sim
        .run(&mut tracker, &trace, Seconds::new(60.0))
        .expect("run completes");
    let metrics = report.metrics.expect("obs run collects metrics");

    let closed_loop = report.overhead_energy.value()
        + report.loss_energy.value()
        + report.load_served.value()
        + report.compute_energy.value();
    let rel = metrics.ledger().relative_error(Joules::new(closed_loop));
    assert!(rel < 1e-9, "ledger drifts from closed loop: {rel:.3e}");

    let json = metrics.to_json();
    for key in [
        "\"counters\"",
        "\"spans\"",
        "\"energy_ledger_j\"",
        "\"astable\"",
    ] {
        assert!(json.contains(key), "JSON export missing {key}: {json}");
    }
    let table = metrics.to_table();
    assert!(
        table.contains("energy ledger"),
        "table export misses the ledger:\n{table}"
    );
    assert!(
        table.contains("node.measurements"),
        "table export misses counters:\n{table}"
    );
}

/// Fleet-level stores merge worker-invariantly through the facade.
#[test]
fn fleet_metrics_worker_invariant() {
    let mut spec = FleetSpec::mixed_indoor_outdoor(6, 42).expect("valid spec");
    spec.trace_decimate = 3600;
    spec.dt = Seconds::new(3600.0);
    spec.obs = true;
    let one = FleetRunner::new(1).run(&spec).expect("1-worker run");
    let four = FleetRunner::new(4).run(&spec).expect("4-worker run");
    assert!(one.metrics.is_some());
    assert_eq!(one.metrics, four.metrics);
}

/// The recorder API is usable stand-alone (no simulation at all), and
/// the no-op default discards everything without failing.
#[test]
fn recorder_api_stand_alone() {
    let mut metrics = Metrics::default();
    metrics.add_counter("events", 2);
    metrics.charge(EnergyBucket::Load, Joules::new(1.5));
    assert!(metrics.observe("dwell_s", &[0.0, 1.0, 10.0], 0.3));
    assert_eq!(metrics.counter("events"), 2);

    let mut none: Option<Metrics> = None;
    assert!(!none.enabled());
    none.add_counter("events", 7); // silently dropped
    assert!(none.is_none());
}
