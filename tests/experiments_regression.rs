//! Regression pins for the headline numbers recorded in EXPERIMENTS.md.
//! If a model change moves one of these outside its band, the recorded
//! results (and possibly the calibration) need re-examination — these
//! tests make that drift loud instead of silent.

use pv_mppt_repro::core::{tracking_accuracy_table, SystemConfig};
use pv_mppt_repro::env::{profiles, sampling_error, TimeSeries};
use pv_mppt_repro::pv::{presets, PvCell};
use pv_mppt_repro::units::{Lux, Seconds};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

/// E4: every Table I row reproduces Voc within 2 % and k in-band.
#[test]
fn table1_rows_within_bands() {
    const PAPER: [(f64, f64); 12] = [
        (200.0, 4.978),
        (300.0, 5.096),
        (400.0, 5.18),
        (500.0, 5.242),
        (600.0, 5.292),
        (700.0, 5.333),
        (800.0, 5.369),
        (900.0, 5.41),
        (1000.0, 5.44),
        (2000.0, 5.64),
        (3000.0, 5.75),
        (5000.0, 5.91),
    ];
    let base = SystemConfig::paper_prototype().expect("valid prototype");
    let intensities: Vec<Lux> = PAPER.iter().map(|&(lux, _)| Lux::new(lux)).collect();
    let rows = tracking_accuracy_table(&base, &intensities, 1).expect("table runs");
    for (row, &(lux, voc_paper)) in rows.iter().zip(&PAPER) {
        let rel = (row.open_circuit_voltage.value() - voc_paper).abs() / voc_paper;
        assert!(rel < 0.02, "Voc({lux}) off by {rel:.4}");
        let k = row.k.as_percent();
        assert!((58.5..61.0).contains(&k), "k({lux}) = {k}");
    }
}

/// E5: the Eq. (2) headline numbers stay in their recorded bands
/// (desk ≈ 15 mV, semi-mobile ≈ 24 mV at a 60 s period, seed 2011).
#[test]
fn eq2_headlines_stable() {
    let cell = presets::schott_asi_1116929();
    let desk = voc_trace(&cell, &profiles::desk_weekend_blinds_closed(2011));
    let mobile = voc_trace(&cell, &profiles::semi_mobile_friday(2011));
    let e_desk =
        sampling_error::worst_case_mean_error(&desk, Seconds::new(60.0)).expect("analysis");
    let e_mobile =
        sampling_error::worst_case_mean_error(&mobile, Seconds::new(60.0)).expect("analysis");
    assert!(
        (0.010..0.020).contains(&e_desk),
        "desk Ē drifted: {e_desk} V (recorded 15.2 mV)"
    );
    assert!(
        (0.019..0.030).contains(&e_mobile),
        "mobile Ē drifted: {e_mobile} V (recorded 24.2 mV)"
    );
}

/// E6: the calibrated metrology chain still lands on the paper's 7.6 µA.
#[test]
fn metrology_budget_stable() {
    use pv_mppt_repro::analog::astable::AstableMultivibrator;
    use pv_mppt_repro::analog::sample_hold::{SampleHold, SampleHoldConfig};
    use pv_mppt_repro::analog::CurrentLedger;
    use pv_mppt_repro::units::Volts;

    let mut astable = AstableMultivibrator::paper_configuration().expect("valid astable");
    let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298).expect("valid"))
        .expect("valid S&H");
    let mut ledger = CurrentLedger::new();
    let total = Seconds::new(3.0 * 69.05);
    let mut t = Seconds::ZERO;
    while t < total {
        let seg = astable
            .time_to_next_transition()
            .min(Seconds::new(1.0))
            .max(Seconds::from_milli(1.0))
            .min(total - t);
        let pulse = astable.output_high();
        let a = astable.step(seg);
        let s = sh.step(Volts::new(5.44), pulse, seg);
        ledger.accumulate("astable", a.supply_charge / seg, seg);
        ledger.accumulate("sh", s.supply_charge / seg, seg);
        ledger.advance(seg);
        t += seg;
    }
    let ua = ledger.average_current_elapsed().as_micro();
    assert!(
        (7.3..7.9).contains(&ua),
        "metrology drifted to {ua} µA (recorded 7.60, paper 7.6)"
    );
}

/// E1: the Fig. 1 cell's headline MPP at 1000 lux stays put.
#[test]
fn fig1_mpp_stable() {
    let cell = presets::schott_asi_1116929();
    let mpp = cell.mpp(Lux::new(1000.0)).expect("solver converges");
    assert!(
        (1.2e-3..1.45e-3).contains(&mpp.power.value()),
        "Fig.1 MPP drifted: {}",
        mpp.power
    );
    assert!(
        (3.0..3.3).contains(&mpp.voltage.value()),
        "Fig.1 Vmpp drifted: {}",
        mpp.voltage
    );
}

/// E9.3: the hold-capacitor droop budget (polyester, 69 s) stays within
/// the §II-B error budget.
#[test]
fn hold_droop_stable() {
    use pv_mppt_repro::analog::sample_hold::{SampleHold, SampleHoldConfig};
    use pv_mppt_repro::units::Volts;

    let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298).expect("valid"))
        .expect("valid S&H");
    sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
    let held = sh.hold_voltage();
    sh.step(Volts::ZERO, false, Seconds::new(69.0));
    let droop = (held - sh.hold_voltage()).value() * 1e3;
    assert!(
        (0.1..3.0).contains(&droop),
        "droop drifted: {droop} mV (recorded ≈1.2 mV)"
    );
}
