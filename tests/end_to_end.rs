//! Cross-crate integration: data flows cleanly from the environment
//! through the cell model, the analog metrology, the converter and the
//! node engine — exercising the facade's re-exports.

use pv_mppt_repro::analog::astable::AstableMultivibrator;
use pv_mppt_repro::analog::sample_hold::{SampleHold, SampleHoldConfig};
use pv_mppt_repro::converter::{ColdStart, ColdStartState, InputRegulatedConverter};
use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig, SystemState};
use pv_mppt_repro::env::profiles;
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Amps, Lux, Seconds, Volts};

/// The hand-wired signal chain: environment → cell → S&H → converter.
/// (What `FocvMpptSystem` automates, assembled manually.)
#[test]
fn manual_signal_chain() {
    let trace = profiles::constant(Lux::new(800.0), Seconds::new(100.0));
    let cell = presets::sanyo_am1815();
    let mut astable = AstableMultivibrator::paper_configuration().expect("valid astable");
    let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298).expect("valid"))
        .expect("valid S&H");
    let converter = InputRegulatedConverter::paper_prototype().expect("valid converter");

    let lux = Lux::new(trace.value_at(Seconds::new(1.0)).expect("in range"));
    let voc = cell.open_circuit_voltage(lux).expect("solver converges");

    // One PULSE: sample the open-circuit voltage.
    assert!(
        astable.output_high(),
        "astable powers up in the PULSE state"
    );
    let step = sh.step(voc, true, Seconds::from_milli(39.0));
    assert!(step.active);
    let held = step.held_sample;
    assert!((held.value() - voc.value() * 0.298).abs() < 0.01);

    // Hold phase: the converter regulates the cell at held/α.
    astable.step(Seconds::from_milli(39.0));
    let v_ref = Volts::new(held.value() / 0.5);
    let i = cell.current_at(v_ref, lux).expect("solver converges");
    let harvest = converter.harvest(v_ref, i, Seconds::new(69.0));
    assert!(harvest.output_energy.value() > 0.0);

    // The regulated point is close to the true MPP.
    let mpp = cell.mpp(lux).expect("solver converges");
    let p_ratio = harvest.input_power.value() / mpp.power.value();
    assert!(p_ratio > 0.9, "harvesting at {p_ratio:.3} of MPP power");
}

/// Cold start wiring: cell current charges C1 until the rail comes up.
#[test]
fn manual_cold_start_chain() {
    let cell = presets::sanyo_am1815();
    let mut cs = ColdStart::paper_prototype().expect("valid cold start");
    let lux = Lux::new(400.0);
    let mut t = 0.0;
    while cs.state() == ColdStartState::Charging && t < 30.0 {
        let knee = cs
            .charging_knee()
            .min(cell.open_circuit_voltage(lux).expect("solver converges"));
        let i = cell.current_at(knee, lux).expect("solver converges");
        cs.step(i.max(Amps::ZERO), Amps::ZERO, Seconds::new(0.05));
        t += 0.05;
    }
    assert_eq!(
        cs.state(),
        ColdStartState::Running,
        "400 lux must start in 30 s"
    );
    assert!(t < 5.0, "cold start took {t} s at 400 lux");
}

/// The automated system walks through all of its states on a light step.
#[test]
fn system_state_machine_traversal() {
    let mut sys =
        FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid")).expect("valid system");
    let mut seen_cold = false;
    let mut seen_sampling = false;
    let mut seen_harvesting = false;
    for _ in 0..4000 {
        let step = sys
            .step(Lux::new(600.0), Seconds::new(0.02))
            .expect("step succeeds");
        match step.state {
            SystemState::ColdStarting => seen_cold = true,
            SystemState::Sampling => seen_sampling = true,
            SystemState::Harvesting => seen_harvesting = true,
            SystemState::Waiting => {}
        }
    }
    assert!(seen_cold, "never saw ColdStarting");
    assert!(seen_sampling, "never saw Sampling");
    assert!(seen_harvesting, "never saw Harvesting");
}

/// Energy conservation across the whole system: stored energy never
/// exceeds what the PV module delivered.
#[test]
fn energy_conservation() {
    let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
    let report = sys
        .run_constant(Lux::new(2000.0), Seconds::new(250.0), Seconds::new(0.05))
        .expect("run succeeds");
    assert!(report.stored_energy.value() > 0.0);
    assert!(
        report.stored_energy.value() <= report.pv_energy.value(),
        "stored {} > extracted {}",
        report.stored_energy,
        report.pv_energy
    );
    // And the extraction is bounded by MPP power times duration.
    let mpp = presets::sanyo_am1815()
        .mpp(Lux::new(2000.0))
        .expect("solver converges");
    assert!(report.pv_energy.value() <= mpp.power.value() * 250.0 * 1.01);
}

/// A dynamic light trace drives the full analog system end to end.
#[test]
fn full_system_over_dynamic_trace() {
    let trace = profiles::office_desk_mixed(3)
        .decimate(600)
        .expect("decimate succeeds"); // 10-minute grid for speed
    let mut sys =
        FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid")).expect("valid system");
    let report = sys
        .run_trace(&trace, Seconds::new(2.0))
        .expect("run succeeds");
    assert!(
        report.pulses > 100,
        "a lit day has many PULSEs, got {}",
        report.pulses
    );
    assert!(report.stored_energy.value() > 0.0);
}
