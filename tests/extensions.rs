//! Integration coverage for the extension modules (arrays, spectrum,
//! thermal, sizing, endurance) through the facade — the pieces that go
//! beyond the paper's own evaluation.

use pv_mppt_repro::core::baselines::FocvSampleHold;
use pv_mppt_repro::core::MpptController;
use pv_mppt_repro::env::week::{self, DayKind};
use pv_mppt_repro::node::{endurance, sizing, DutyCycledLoad, NodeSimulation, SimConfig};
use pv_mppt_repro::pv::array::{ParallelBank, SeriesString, StringElement};
use pv_mppt_repro::pv::spectrum::{effective_illuminance, spectral_factor, CellTechnology};
use pv_mppt_repro::pv::{presets, thermal, LightSource};
use pv_mppt_repro::units::{Joules, Kelvin, Lux, Seconds, Volts};

/// A wearable collector: two 2-module strings in parallel, one string
/// half shaded, under incandescent living-room light — the paper's
/// body-worn scenario with every extension module in play at once.
#[test]
fn wearable_collector_end_to_end() {
    let string_a = SeriesString::new(
        vec![
            StringElement::new(presets::sanyo_am1815(), 1.0).expect("valid"),
            StringElement::new(presets::sanyo_am1815(), 1.0).expect("valid"),
        ],
        Volts::from_milli(350.0),
    )
    .expect("valid string");
    let string_b = SeriesString::new(
        vec![
            StringElement::new(presets::sanyo_am1815(), 0.5).expect("valid"),
            StringElement::new(presets::sanyo_am1815(), 1.0).expect("valid"),
        ],
        Volts::from_milli(350.0),
    )
    .expect("valid string");
    let bank = ParallelBank::new(vec![string_a, string_b]).expect("valid bank");

    // 300 metered lux of incandescent light, a-Si spectral response.
    let eff = effective_illuminance(
        Lux::new(300.0),
        CellTechnology::AmorphousSilicon,
        LightSource::Incandescent,
    );
    assert!(eff < Lux::new(300.0), "a-Si discounts incandescent lux");

    let mpp = bank.global_mpp(eff, Kelvin::STC).expect("solver converges");
    assert!(mpp.power.value() > 0.0);
    // FOCV on the bank: within the single-hump regime (mild shading) the
    // k·Voc point captures most of the global maximum.
    let voc = bank.open_circuit_voltage(eff).expect("solver converges");
    let focv_i = bank.current_at(voc * 0.596, eff).expect("solver converges");
    let focv_p = (voc * 0.596) * focv_i;
    assert!(
        focv_p.value() > 0.8 * mpp.power.value(),
        "FOCV captures {:.3} of the bank's GMPP",
        focv_p.value() / mpp.power.value()
    );
}

/// Thermal + spectral effects compose: a warm cell under incandescent
/// light still tracks, and the FOCV worst-case capture over the whole
/// envelope stays high.
#[test]
fn thermal_spectral_envelope() {
    let cell = presets::sanyo_am1815();
    let eff = effective_illuminance(
        Lux::new(500.0),
        CellTechnology::AmorphousSilicon,
        LightSource::Incandescent,
    );
    let span: Vec<_> = [0.0, 25.0, 50.0]
        .map(pv_mppt_repro::units::Celsius::new)
        .to_vec();
    let capture = thermal::focv_worst_capture(&cell, eff, 0.596, &span).expect("solver converges");
    assert!(
        capture.value() > 0.95,
        "worst capture over the envelope = {capture}"
    );
}

/// The sizing arithmetic agrees with the simulation: the store energy the
/// sizing module predicts for a night matches what a simulated dark run
/// actually consumes, within 20 %.
#[test]
fn sizing_matches_simulation() {
    let load = DutyCycledLoad::typical_sensor_node().expect("valid load");
    let tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
    let hours = 8.0;
    // The module's survival figure inverts to the total draw: 1 J lasts
    // 1/draw seconds, so the night costs hours·3600·draw joules.
    let one_joule_lasts =
        sizing::dark_survival(Joules::new(1.0), &load, &tracker).expect("valid draw");
    let predicted = hours * 3600.0 / one_joule_lasts.value();
    let direct = (load.average_power().value() + tracker.overhead_power().value()) * hours * 3600.0;
    assert!((predicted - direct).abs() < 1e-9 * direct);

    // Simulate the same 8 h of darkness and measure the overhead+load
    // energy the engine actually books.
    let trace = pv_mppt_repro::env::profiles::constant(Lux::ZERO, Seconds::from_hours(hours));
    let cfg = SimConfig::default_for(presets::sanyo_am1815())
        .unwrap()
        .with_load(load);
    let mut sim = NodeSimulation::new(cfg).expect("valid sim");
    let mut t = FocvSampleHold::paper_prototype().expect("valid tracker");
    let report = sim
        .run(&mut t, &trace, Seconds::new(10.0))
        .expect("run succeeds");
    let consumed = report.overhead_energy.value() + report.load_demand.value();
    let rel = (consumed - predicted).abs() / predicted;
    assert!(rel < 0.2, "sizing vs sim mismatch {rel:.3}");
}

/// A three-day endurance run through the facade: storage carries over,
/// reports are per-window, energies are finite and ordered sensibly.
#[test]
fn endurance_three_days() {
    let trace = week::sequence(
        &[
            DayKind::Office,
            DayKind::WeekendBlindsClosed,
            DayKind::Office,
        ],
        99,
    )
    .expect("valid sequence")
    .decimate(120)
    .expect("valid decimation");
    let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
        .expect("valid sim");
    let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
    let reports = endurance::run_windowed(
        &mut sim,
        &mut tracker,
        &trace,
        Seconds::from_hours(24.0),
        Seconds::new(120.0),
    )
    .expect("run succeeds");
    assert_eq!(reports.len(), 3);
    // The weekend day harvests far less than the office days.
    assert!(reports[1].gross_energy.value() < 0.3 * reports[0].gross_energy.value());
    assert!(reports[2].gross_energy.value() > reports[1].gross_energy.value());
    for r in &reports {
        assert!(r.gross_energy.value().is_finite());
        assert!(r.overhead_energy > Joules::ZERO);
    }
}

/// Spectral factors are consistent with the conversion helper for every
/// (technology, source) pair.
#[test]
fn spectral_table_consistency() {
    for tech in [
        CellTechnology::AmorphousSilicon,
        CellTechnology::CrystallineSilicon,
    ] {
        for source in [
            LightSource::Daylight,
            LightSource::Fluorescent,
            LightSource::Incandescent,
            LightSource::Led,
        ] {
            let f = spectral_factor(tech, source);
            assert!(f.value() > 0.0 && f.value() < 5.0);
            let eff = effective_illuminance(Lux::new(100.0), tech, source);
            assert!((eff.value() - 100.0 * f.value()).abs() < 1e-9);
        }
    }
}
