//! Fault injection: the system's self-healing properties. The FOCV
//! sample-and-hold is open-loop between samples, so any corruption of
//! the held value persists at most one hold period — the architectural
//! property that makes the 69 s cadence safe.

use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig};
use pv_mppt_repro::units::{Lux, Seconds, Volts};

fn charged_system() -> FocvMpptSystem {
    let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    FocvMpptSystem::new(cfg).expect("valid system")
}

/// A corrupted held sample is flushed by the next PULSE.
#[test]
fn corrupted_sample_recovers_within_one_period() {
    let lux = Lux::new(1000.0);
    let mut sys = charged_system();
    sys.run_constant(lux, Seconds::new(80.0), Seconds::new(0.05))
        .expect("run succeeds");
    let good = sys.report(lux).expect("report").final_held_sample;

    // Glitch: the hold capacitor is disturbed to nonsense.
    sys.inject_held_sample(Volts::new(0.4));
    let step = sys.step(lux, Seconds::new(1.0)).expect("step succeeds");
    assert!(
        (step.held_sample.value() - 0.4).abs() < 0.05,
        "glitch visible"
    );

    // Within one full hold period the system resamples and recovers.
    sys.run_constant(lux, Seconds::new(70.0), Seconds::new(0.05))
        .expect("run succeeds");
    let recovered = sys.report(lux).expect("report").final_held_sample;
    assert!(
        (recovered.value() - good.value()).abs() < 0.01,
        "recovered {recovered} vs good {good}"
    );
}

/// A corrupted sample *below* the ACTIVE threshold also stops the
/// converter (the U5 sanity check) until the next sample restores it.
#[test]
fn undervoltage_glitch_trips_active_then_recovers() {
    let lux = Lux::new(1000.0);
    let mut sys = charged_system();
    sys.run_constant(lux, Seconds::new(80.0), Seconds::new(0.05))
        .expect("run succeeds");
    sys.inject_held_sample(Volts::from_milli(100.0)); // below Vdd/4
    let step = sys.step(lux, Seconds::new(0.1)).expect("step succeeds");
    assert!(!step.active, "ACTIVE must drop on an invalid held value");
    sys.run_constant(lux, Seconds::new(70.0), Seconds::new(0.05))
        .expect("run succeeds");
    let step = sys.step(lux, Seconds::new(0.1)).expect("step succeeds");
    assert!(step.active, "ACTIVE must recover after the next PULSE");
}

/// A rail brown-out forces a clean cold start, after which the system
/// harvests again.
#[test]
fn brownout_cold_starts_again() {
    let lux = Lux::new(500.0);
    let mut sys = charged_system();
    sys.run_constant(lux, Seconds::new(75.0), Seconds::new(0.05))
        .expect("run succeeds");
    let pulses_before = sys.pulses();
    assert!(pulses_before >= 1);

    sys.collapse_rail();
    let report = sys
        .run_constant(lux, Seconds::new(75.0), Seconds::new(0.05))
        .expect("run succeeds");
    // New pulses happened after the brown-out (astable restarted).
    assert!(
        report.pulses > pulses_before,
        "system must resume sampling after brown-out"
    );
    assert!(report.stored_energy.value() > 0.0);
}

/// A rail collapse *while PULSE is high* must not eat the recovery pulse:
/// the edge detector's memory has to be cleared on the rail's on→off
/// transition, or the power-up PULSE after the cold start is miscounted
/// as no rising edge.
#[test]
fn rail_collapse_mid_pulse_still_counts_recovery_pulse() {
    let lux = Lux::new(1000.0);
    let mut sys = charged_system();
    // The astable powers up with PULSE high, so the first short step lands
    // inside the 39 ms power-up pulse.
    let step = sys
        .step(lux, Seconds::from_milli(10.0))
        .expect("step succeeds");
    assert!(step.pulse, "power-up PULSE must be high");
    assert_eq!(sys.pulses(), 1);

    // The rail dies while PULSE is high (hard brown-out mid-sample).
    sys.collapse_rail();
    sys.step(Lux::ZERO, Seconds::new(1.0))
        .expect("step succeeds");

    // Light returns: the system cold-starts and the astable fires its
    // power-up PULSE again — that pulse must be counted as a fresh edge.
    sys.run_constant(lux, Seconds::new(30.0), Seconds::new(0.05))
        .expect("run succeeds");
    assert!(
        sys.pulses() >= 2,
        "recovery PULSE was not counted: {} pulses",
        sys.pulses()
    );
}

/// A sudden light drop between samples leaves the system harvesting at a
/// stale (too high) set point; the next PULSE re-aims it. This is the
/// §II-B trade made concrete.
#[test]
fn stale_setpoint_after_light_step_down() {
    let mut sys = charged_system();
    sys.run_constant(Lux::new(5000.0), Seconds::new(75.0), Seconds::new(0.05))
        .expect("run succeeds");
    let bright_held = sys
        .report(Lux::new(5000.0))
        .expect("report")
        .final_held_sample;

    // Light collapses to 200 lux: held sample is stale for < one period.
    let step = sys
        .step(Lux::new(200.0), Seconds::new(1.0))
        .expect("step succeeds");
    assert!(
        (step.held_sample.value() - bright_held.value()).abs() < 0.01,
        "held must be stale immediately after the step"
    );
    // The stale set point (k·Voc_bright ≈ 3.46 V) is above the dim cell's
    // MPP but below its Voc, so harvesting continues (degraded, not dead).
    assert!(step.pv_voltage.value() > 3.0);

    sys.run_constant(Lux::new(200.0), Seconds::new(70.0), Seconds::new(0.05))
        .expect("run succeeds");
    let dim_report = sys.report(Lux::new(200.0)).expect("report");
    // Re-aimed: k back in the Table I band at the new intensity.
    let k = dim_report.measured_k.as_percent();
    assert!((58.0..61.0).contains(&k), "k after re-aim = {k}");
}

/// Darkness mid-run: the converter idles, the hold droops only
/// microvolts, and harvesting resumes when light returns.
#[test]
fn dark_interval_then_resume() {
    let lux = Lux::new(1000.0);
    let mut sys = charged_system();
    sys.run_constant(lux, Seconds::new(75.0), Seconds::new(0.05))
        .expect("run succeeds");
    let stored_before = sys.stored_energy();

    // 30 s of darkness (a shadow passes): nothing harvested.
    sys.run_constant(Lux::new(0.0), Seconds::new(30.0), Seconds::new(0.05))
        .expect("run succeeds");
    let stored_dark = sys.stored_energy();
    assert!((stored_dark.value() - stored_before.value()).abs() < 1e-6);

    // Light returns; harvest resumes within a hold period.
    sys.run_constant(lux, Seconds::new(75.0), Seconds::new(0.05))
        .expect("run succeeds");
    assert!(sys.stored_energy() > stored_dark);
}
