//! End-to-end verification of the paper's headline claims, exercising
//! the full crate stack through the facade.

use pv_mppt_repro::core::baselines::{FocvSampleHold, PerturbObserve};
use pv_mppt_repro::core::{FocvMpptSystem, MpptController, SystemConfig};
use pv_mppt_repro::env::{profiles, sampling_error, TimeSeries};
use pv_mppt_repro::node::{compare_trackers, NodeSimulation, SimConfig};
use pv_mppt_repro::pv::{focv, presets, PvCell};
use pv_mppt_repro::units::{Lux, Ratio, Seconds, Volts};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

/// Abstract claim: the novel S&H arrangement draws ~8 µA on average
/// (§IV-B: "a quiescent current draw of 8 µA").
#[test]
fn claim_8_microamp_metrology() {
    let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
    let report = sys
        .run_constant(Lux::new(1000.0), Seconds::new(345.0), Seconds::new(0.02))
        .expect("run succeeds");
    let ua = report.average_metrology_current.as_micro();
    assert!(
        (7.0..8.6).contains(&ua),
        "metrology draw {ua} µA outside the paper's 7.6–8 µA band"
    );
}

/// Table I claim: tracking factor k stays in a tight band (59.2–60.1 %)
/// from 200 to 5000 lux.
#[test]
fn claim_table1_k_band() {
    for lux in [200.0, 700.0, 2000.0, 5000.0] {
        let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
        cfg.cold_start.set_rail_voltage(Volts::new(3.3));
        let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
        let report = sys
            .run_constant(Lux::new(lux), Seconds::new(140.0), Seconds::new(0.02))
            .expect("run succeeds");
        let k = report.measured_k.as_percent();
        assert!(
            (58.5..61.0).contains(&k),
            "k({lux} lx) = {k} % outside the Table I band"
        );
    }
}

/// §IV-B claim: the system cold starts at 200 lux and fires its first
/// PULSE quickly.
#[test]
fn claim_cold_start_at_200_lux() {
    let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype().expect("valid prototype"))
        .expect("valid system");
    let report = sys
        .run_constant(Lux::new(200.0), Seconds::new(60.0), Seconds::new(0.05))
        .expect("run succeeds");
    let t_start = report.cold_start_time.expect("must cold start at 200 lux");
    assert!(t_start.value() < 30.0, "cold start took {t_start}");
    let t_pulse = report.first_pulse_time.expect("first PULSE must fire");
    assert!(
        (t_pulse - t_start).value() < 1.0,
        "first PULSE should follow the rail immediately"
    );
    assert!(
        report.stored_energy.value() > 0.0,
        "must harvest at 200 lux"
    );
}

/// §II-B claim: with a 1-minute sampling period the worst-case mean Voc
/// error stays in the tens of millivolts on both 24-hour logs and the
/// implied efficiency loss is below 1 %.
#[test]
fn claim_eq2_error_budget() {
    let cell = presets::schott_asi_1116929();
    let desk = voc_trace(&cell, &profiles::desk_weekend_blinds_closed(2011));
    let mobile = voc_trace(&cell, &profiles::semi_mobile_friday(2011));

    let e_desk = sampling_error::worst_case_mean_error(&desk, Seconds::new(60.0))
        .expect("analysis succeeds");
    let e_mobile = sampling_error::worst_case_mean_error(&mobile, Seconds::new(60.0))
        .expect("analysis succeeds");
    // Paper: 12.7 mV and 24.1 mV. Same order, mobile strictly worse.
    assert!(
        (5e-3..40e-3).contains(&e_desk),
        "desk Ē = {} V not in the tens-of-mV band",
        e_desk
    );
    assert!(
        (10e-3..50e-3).contains(&e_mobile),
        "mobile Ē = {} V not in the tens-of-mV band",
        e_mobile
    );
    assert!(e_mobile > e_desk, "semi-mobile must be the worse log");

    let am1815 = presets::sanyo_am1815();
    let mpp_err = focv::mpp_error_from_voc_error(Volts::new(e_mobile), Ratio::new(0.596));
    let loss = focv::efficiency_loss_for_voltage_error(&am1815, Lux::new(500.0), mpp_err)
        .expect("analysis succeeds");
    assert!(
        loss.as_percent() < 1.0,
        "worst-case loss {loss} breaks the <1 % claim"
    );
}

/// §I/§IV-B claim: state-of-the-art outdoor trackers are net-negative
/// indoors; the proposed technique is net-positive and near the oracle.
#[test]
fn claim_indoor_superiority() {
    let cell = presets::sanyo_am1815();
    let indoor = profiles::constant(Lux::new(300.0), Seconds::from_hours(1.0));
    let mut focv = FocvSampleHold::paper_prototype().expect("valid tracker");
    let mut po = PerturbObserve::literature_default().expect("valid tracker");
    let mut trackers: Vec<&mut dyn MpptController> = vec![&mut focv, &mut po];
    let rows =
        compare_trackers(&cell, &indoor, Seconds::new(1.0), &mut trackers).expect("run succeeds");

    let focv_row = rows
        .iter()
        .find(|r| r.name.contains("sample-and-hold"))
        .expect("FOCV row");
    let po_row = rows
        .iter()
        .find(|r| r.name.contains("perturb"))
        .expect("P&O row");
    assert!(focv_row.summary.is_net_positive());
    assert!(!po_row.summary.is_net_positive());
    assert!(
        focv_row.summary.efficiency_vs_oracle().value() > 0.6,
        "FOCV vs oracle = {}",
        focv_row.summary.efficiency_vs_oracle()
    );
}

/// Abstract claim: the technique needs no pilot cell or photodiode —
/// i.e. the FOCV controller never reads the ambient-light observation.
#[test]
fn claim_no_light_sensor_needed() {
    let tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
    assert!(!tracker.requires_light_sensor());
    assert!(tracker.can_cold_start());
}

/// §IV-A claim: the astable produces a 39 ms ON and 69 s OFF period, and
/// the full system's PULSE cadence follows it.
#[test]
fn claim_pulse_timing() {
    let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
    cfg.record_traces = true;
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
    sys.run_constant(Lux::new(1000.0), Seconds::new(220.0), Seconds::new(0.005))
        .expect("run succeeds");
    let pulse = sys.pulse_trace().expect("tracing enabled");
    let rises = pulse.rising_edges(1.65);
    assert!(
        rises.len() >= 3,
        "need at least 3 pulses, got {}",
        rises.len()
    );
    let period = (rises[2] - rises[1]).value();
    assert!((period - 69.04).abs() < 0.5, "PULSE period {period} s");
    for width in pulse.high_durations(1.65) {
        assert!(
            (width.as_milli() - 39.0).abs() < 8.0,
            "PULSE width {width} vs 39 ms"
        );
    }
}

/// The simulation engine itself: a full closed-loop day costs seconds,
/// and the node stays alive through it (sanity of the whole stack).
#[test]
fn full_day_closed_loop_smoke() {
    let day = profiles::office_desk_mixed(99)
        .decimate(30)
        .expect("decimate succeeds");
    let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
        .expect("valid config");
    let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
    let report = sim
        .run(&mut tracker, &day, Seconds::new(30.0))
        .expect("run succeeds");
    assert!(
        report.gross_energy.value() > 1.0,
        "a lit office day yields joules"
    );
    assert!(report.is_net_positive());
}
