//! Will the paper's 7.6 µA FOCV tracker keep a fleet alive for a year?
//!
//! The paper validates its tracker on 24-hour logs; this example runs a
//! multi-season endurance campaign instead: a seeded fleet under a
//! seasonal sky, Markov weather, dust/aging/storage-wear drift and a
//! fault plan, then compares climates and asks where the design breaks
//! first. Campaign reports are bit-identical at any worker count, so
//! every number below is reproducible from the spec alone.
//!
//! Run with `cargo run --release --example campaign_survival`.

use pv_mppt_repro::campaign::{CampaignRunner, CampaignSpec, Climate, FaultPlan, LoadClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = CampaignRunner::new(4);

    // One simulated year, 96 nodes, temperate 52° N, the paper-class
    // sensor load (sleep / sense / transmit).
    let mut spec = CampaignSpec::reference(96, 2011);
    spec.name = "endurance x96 365d temperate sensor".to_owned();
    spec.days = 365;
    spec.epoch_days = 28;
    spec.load = LoadClass::SensorNode;
    let report = runner.run(&spec)?;
    println!("{report}");

    // The same fleet, same seed, heavier duty-cycled radio load: how
    // much endurance does the receive window cost?
    let mut radio = spec.clone();
    radio.name = "endurance x96 365d temperate radio".to_owned();
    radio.load = LoadClass::DutyCycledRadio;
    let radio_report = runner.run(&radio)?;
    println!("{radio_report}");
    println!(
        "load class sensor -> radio: survivors {} -> {} of {}\n",
        report.survivors(),
        radio_report.survivors(),
        report.nodes()
    );

    // Climate sweep at the sensor load: identical fleet and faults,
    // only the sky changes.
    for climate in Climate::ALL {
        let mut c = spec.clone();
        c.name = format!("endurance x96 365d {}", climate.label());
        c.climate = climate;
        // Monsoon/arid sites sit closer to the equator than 52° N.
        if climate != Climate::Temperate {
            c.latitude_deg = 15.0;
        }
        let r = runner.run(&c)?;
        let p = r.survival_percentiles().expect("non-empty campaign");
        println!(
            "{:<10}  survivors {:>3}/{}   survival p5 {:>5.0} d  p50 {:>5.0} d",
            climate.label(),
            r.survivors(),
            r.nodes(),
            p.p5,
            p.p50,
        );
    }

    // Fault storms: the same temperate year with every node guaranteed
    // one fault (stuck hold capacitor, divider drift or a converter
    // dropout storm) at a seeded onset.
    let mut storm = spec.clone();
    storm.name = "endurance x96 365d fault storm".to_owned();
    storm.faults = FaultPlan { probability: 1.0 };
    let storm_report = runner.run(&storm)?;
    println!(
        "\nfault storm: survivors {} -> {} of {} once every node faults",
        report.survivors(),
        storm_report.survivors(),
        report.nodes()
    );

    Ok(())
}
