//! A production deployment is never one node: every unit carries its
//! own divider trim, astable timing, cell binning, dust, and desk
//! placement. This example stamps a 60-node heterogeneous fleet out of
//! one seeded `FleetSpec`, prints the population-level statistics with
//! the worst-node drill-down, and then replays the *same* population
//! against every baseline tracker.
//!
//! Run with `cargo run --example fleet_comparison`. Pass
//! `--engine per-node|batch|vectorized` (default `batch`) to pick the
//! execution engine — per-node and batch are bit-identical, the
//! vectorized engine matches under its bounded-divergence contract
//! (exact counts/classifications, energies within rel 1e-9).

use pv_mppt_repro::fleet::{
    compare_trackers_over_fleet_with, Engine, FleetRunner, FleetSpec, Placement, TrackerKind,
};
use pv_mppt_repro::units::Seconds;

/// Parses `--engine X` / `--engine=X` from the arguments; defaults to
/// the batch engine, and falls back to it on an unknown spelling.
fn engine_from_args() -> Engine {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--engine" {
            return args
                .next()
                .and_then(|v| Engine::parse(&v))
                .unwrap_or(Engine::Batch);
        }
        if let Some(v) = arg.strip_prefix("--engine=") {
            return Engine::parse(v).unwrap_or(Engine::Batch);
        }
    }
    Engine::Batch
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 60 nodes from one seed: production-batch tolerances, mixed
    // window/interior/outdoor placements, supercap storage. A 10-minute
    // grid keeps the 8-tracker shoot-out at example speed.
    let mut spec = FleetSpec::mixed_indoor_outdoor(60, 2011)?;
    spec.name = "office building, floor 3".into();
    spec.trace_decimate = 600;
    spec.dt = Seconds::new(600.0);

    let engine = engine_from_args();
    let runner = FleetRunner::auto();
    let report = runner.run_engine(&spec, TrackerKind::Focv, engine)?;

    println!("engine: {engine}\n");
    println!("{report}");
    for p in [
        Placement::WindowDesk,
        Placement::InteriorDesk,
        Placement::Outdoor,
    ] {
        println!("  {:>2} × {}", report.placement_count(p), p.label());
    }

    // The same 60 nodes — identical trims, placements, and light — under
    // every tracker the paper compares against. Gross harvest, metrology
    // energy and MCU compute energy are separate columns: the net-energy
    // ranking is their difference, and it is what decides deployment.
    println!("\nSame population, every tracker (median energy columns + net percentiles):\n");
    println!(
        "{:<42} {:>10} {:>10} {:>11} {:>10} {:>10} {:>10} {:>6} {:>8}",
        "tracker",
        "gross (J)",
        "metro (J)",
        "compute (J)",
        "p5 (J)",
        "p50 (J)",
        "p95 (J)",
        "net<0",
        "br-outs"
    );
    let comparison = compare_trackers_over_fleet_with(&spec, &runner, engine)?;
    for (kind, fleet) in &comparison {
        let p50 = |p: Option<pv_mppt_repro::fleet::Percentiles>| p.expect("non-empty fleet").p50;
        let p = fleet.net_energy_percentiles().expect("non-empty fleet");
        println!(
            "{:<42} {:>10.3} {:>10.3} {:>11.6} {:>10.3} {:>10.3} {:>10.3} {:>6} {:>8}",
            kind.label(),
            p50(fleet.gross_energy_percentiles()),
            p50(fleet.overhead_percentiles()),
            p50(fleet.compute_energy_percentiles()),
            p.p5,
            p.p50,
            p.p95,
            fleet.net_negative_count(),
            fleet.brown_out_count()
        );
    }

    println!(
        "\nThe FOCV sample-and-hold keeps the whole population net-positive —\n\
         including the dusty interior-desk worst case — while the mW-class\n\
         trackers drain every node they are deployed on."
    );
    Ok(())
}
