//! Sizing a node for indefinite operation — the design arithmetic behind
//! the paper's opening claim that harvested nodes can "operate
//! indefinitely". How big must the cell and the store be, and how much
//! does the answer depend on the tracker's own power draw?
//!
//! Run with `cargo run --example energy_neutral_sizing`.

use pv_mppt_repro::core::baselines::{FocvSampleHold, PerturbObserve, Photodetector};
use pv_mppt_repro::core::MpptController;
use pv_mppt_repro::node::{sizing, DutyCycledLoad};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Joules, Lux};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let load = DutyCycledLoad::typical_sensor_node()?;
    let cell = presets::sanyo_am1815();
    println!(
        "node load: {} average (sleep/sense/TX duty cycle)",
        load.average_power()
    );
    println!("collector: one AM-1815 (25 cm²), office light 500 lux, lit 10 h/day\n");

    let mut focv = FocvSampleHold::paper_prototype()?;
    let mut po = PerturbObserve::literature_default()?;
    let mut photo = Photodetector::literature_default()?;
    let trackers: Vec<&mut dyn MpptController> = vec![&mut focv, &mut po, &mut photo];

    println!(
        "{:<38} {:>12} {:>16} {:>18}",
        "tracker", "overhead", "cells needed", "dark survival (2.4 J)"
    );
    for tracker in trackers {
        let scale = sizing::required_cell_scale(
            &cell,
            Lux::new(500.0),
            &load,
            tracker,
            10.0 / 24.0,
            0.95,
            0.8,
        )?;
        let survival = sizing::dark_survival(Joules::new(2.4), &load, tracker)?;
        println!(
            "{:<38} {:>12} {:>16} {:>15.1} h",
            tracker.name(),
            format!("{}", tracker.overhead_power()),
            format!("{scale:.2}×"),
            survival.as_hours(),
        );
    }

    println!("\nThe 8 µA tracker keeps the whole system inside one small cell and");
    println!("rides out a night on a coin-sized supercapacitor; the mW-class");
    println!("trackers need an order of magnitude more collector and still drain");
    println!("the store before sunrise — the paper's case, in design numbers.");
    Ok(())
}
