//! Quickstart: model the paper's PV cell, solve its MPP, and run the
//! complete FOCV sample-and-hold MPPT system for a few minutes of
//! simulated office light.
//!
//! Run with `cargo run --example quickstart`.

use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Lux, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The PV module the paper evaluates with: SANYO Amorton AM-1815.
    let cell = presets::sanyo_am1815();
    let lux = Lux::new(1000.0);
    let voc = cell.open_circuit_voltage(lux)?;
    let mpp = cell.mpp(lux)?;
    println!("AM-1815 at {lux}:");
    println!("  open-circuit voltage : {voc}");
    println!("  maximum power point  : {} at {}", mpp.power, mpp.voltage);
    println!("  FOCV factor k        : {}", mpp.focv_factor());

    // 2. The complete system of Fig. 3, starting from a dead battery.
    let mut system = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
    let report = system.run_constant(lux, Seconds::from_minutes(5.0), Seconds::new(0.05))?;

    println!("\nFive minutes under a 1000 lux bench lamp:");
    match report.cold_start_time {
        Some(t) => println!("  cold start completed  : after {t}"),
        None => println!("  cold start            : did not complete"),
    }
    println!("  PULSE operations      : {}", report.pulses);
    println!("  HELD_SAMPLE           : {}", report.final_held_sample);
    println!("  measured k            : {}", report.measured_k);
    println!(
        "  metrology draw        : {}",
        report.average_metrology_current
    );
    println!("  energy to storage     : {}", report.stored_energy);
    Ok(())
}
