//! A wireless sensor node living on an office desk for 24 hours —
//! the indoor scenario from the paper's introduction: ~1 mW of cell
//! output at best, so the MPPT electronics must be ultra low-power.
//!
//! The node: AM-1815 cell, the proposed FOCV sample-and-hold tracker,
//! buck-boost converter, a 0.22 F supercapacitor and a duty-cycled
//! sense-and-transmit load.
//!
//! Run with `cargo run --example indoor_office_day`.

use pv_mppt_repro::core::baselines::FocvSampleHold;
use pv_mppt_repro::env::profiles;
use pv_mppt_repro::node::{DutyCycledLoad, NodeSimulation, SimConfig, Supercapacitor};
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::{Farads, Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let day = profiles::office_desk_mixed(42).decimate(5)?; // 5 s grid

    // Deployed with a charged store so the node survives the first night.
    let store = Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8))?
        .with_initial_voltage(Volts::new(4.0));
    let config = SimConfig::default_for(presets::sanyo_am1815())?
        .with_store(Box::new(store))
        .with_load(DutyCycledLoad::typical_sensor_node()?);

    let mut sim = NodeSimulation::new(config)?;
    let mut tracker = FocvSampleHold::paper_prototype()?;
    let report = sim.run(&mut tracker, &day, Seconds::new(5.0))?;

    println!("24 h on an office desk (mixed natural + artificial light)\n");
    println!("tracker              : {}", report.tracker);
    println!("gross harvest        : {}", report.gross_energy);
    println!("tracker overhead     : {}", report.overhead_energy);
    println!("net harvest          : {}", report.net_energy());
    println!("Voc samples taken    : {}", report.measurements);
    println!("load demand          : {}", report.load_demand);
    println!("load served          : {}", report.load_served);
    println!("uptime               : {}", report.uptime());
    println!("store at midnight    : {}", report.final_store_energy);
    println!();
    if report.uptime().value() > 0.99 {
        println!("The node ran through the whole day — energy-neutral operation,");
        println!("which is exactly what the paper's 8 µA tracker budget buys.");
    } else {
        println!("The node browned out for part of the day; try a larger cell or");
        println!("supercapacitor, or a lower duty cycle.");
    }
    Ok(())
}
