//! Cold start from a completely dead system — the §IV-B demonstration.
//! The PV module charges the small start-up capacitor C1 through the
//! steering diode; when the threshold is reached the metrology rail
//! comes up and the astable fires its first PULSE almost immediately.
//!
//! Run with `cargo run --example coldstart_demo`.

use pv_mppt_repro::core::{FocvMpptSystem, SystemConfig, SystemState};
use pv_mppt_repro::units::{Lux, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for lux in [200.0, 1000.0] {
        let lux = Lux::new(lux);
        println!("--- cold start at {lux} ---");
        let mut system = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
        let mut last_state = None;
        let mut t = 0.0;
        while t < 90.0 {
            let step = system.step(lux, Seconds::new(0.05))?;
            t += 0.05;
            if last_state != Some(step.state) {
                let tag = match step.state {
                    SystemState::ColdStarting => "charging C1",
                    SystemState::Sampling => "PULSE — sampling Voc",
                    SystemState::Harvesting => "harvesting at HELD_SAMPLE/α",
                    SystemState::Waiting => "rail up, waiting",
                };
                println!(
                    "t = {:>7.2} s  rail = {}  held = {}  → {}",
                    t, step.rail_voltage, step.held_sample, tag
                );
                last_state = Some(step.state);
            }
        }
        let report = system.report(lux)?;
        println!(
            "after 90 s: {} pulses, {} stored, k = {}\n",
            report.pulses, report.stored_energy, report.measured_k
        );
    }
    Ok(())
}
