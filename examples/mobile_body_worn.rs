//! The paper's motivating scenario: a body-worn / mobile sensor that
//! sees office light in the morning, full daylight over lunch, and a
//! living-room lamp in the evening. A tracker tuned for one lighting
//! type gives up harvest in the others; the FOCV sample-and-hold adapts.
//!
//! Run with `cargo run --example mobile_body_worn`.

use pv_mppt_repro::core::baselines::{FixedVoltage, FocvSampleHold, PerturbObserve};
use pv_mppt_repro::core::MpptController;
use pv_mppt_repro::env::profiles;
use pv_mppt_repro::node::compare_trackers;
use pv_mppt_repro::pv::presets;
use pv_mppt_repro::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let day = profiles::semi_mobile_friday(42).decimate(5)?;
    let cell = presets::sanyo_am1815();

    let mut focv = FocvSampleHold::paper_prototype()?;
    let mut fixed = FixedVoltage::indoor_tuned()?;
    let mut po = PerturbObserve::literature_default()?;
    let mut trackers: Vec<&mut dyn MpptController> = vec![&mut focv, &mut fixed, &mut po];

    let rows = compare_trackers(&cell, &day, Seconds::new(5.0), &mut trackers)?;

    println!("Semi-mobile day: office morning, outdoor lunch, evening lamp\n");
    println!(
        "{:<38} {:>12} {:>12} {:>12}",
        "tracker", "gross", "overhead", "net"
    );
    for row in &rows {
        println!(
            "{:<38} {:>12} {:>12} {:>12}",
            row.name,
            format!("{}", row.summary.gross_energy),
            format!("{}", row.summary.overhead_energy),
            format!("{}", row.summary.net_energy),
        );
    }

    let focv_row = rows
        .iter()
        .find(|r| r.name.contains("sample-and-hold"))
        .expect("FOCV row present");
    println!(
        "\nThe proposed tracker nets {} of the oracle's harvest with no pilot",
        focv_row.summary.efficiency_vs_oracle()
    );
    println!("cell or photodiode — across a ~100× swing in light intensity.");
    Ok(())
}
