//! §I of the paper notes the technique "is also applicable to other
//! forms of energy harvesting (such as thermoelectric generators) which
//! feature a similar relationship between the open-circuit and MPP
//! voltage". For an ideal TEG that relationship is exact: `Vmpp = Voc/2`.
//!
//! This example applies the FOCV sample-and-hold policy to a TEG on a
//! fluctuating temperature gradient and compares against the true MPP.
//!
//! Run with `cargo run --example teg_harvesting`.

use pv_mppt_repro::pv::teg::Teg;
use pv_mppt_repro::units::{Ohms, Ratio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A body-worn TEG: 50 mV/K stack behind 5 Ω.
    let teg = Teg::new(0.05, Ohms::new(5.0))?;
    let k = Ratio::new(0.5); // exact for a Thevenin source
    let hold_period = 69.0;

    println!("FOCV sample-and-hold on a thermoelectric generator (k = 0.5)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "t (s)", "ΔT (K)", "P tracked", "P ideal", "capture"
    );

    // The gradient drifts slowly (body vs ambient); we sample Voc at the
    // paper's hold period and hold k·Voc in between.
    let gradient = |t: f64| 8.0 + 4.0 * (t / 600.0 * std::f64::consts::TAU).sin();
    let mut held_voc = teg.open_circuit_voltage(gradient(0.0));
    let mut tracked_energy = 0.0;
    let mut ideal_energy = 0.0;
    let dt = 1.0;
    let total = 1800.0;
    let mut t = 0.0f64;
    while t < total {
        if (t / hold_period).fract() < dt / hold_period {
            held_voc = teg.open_circuit_voltage(gradient(t));
        }
        let dt_k = gradient(t);
        let p_tracked = teg.power_at(held_voc * k.value(), dt_k);
        let p_ideal = teg.mpp(dt_k).power;
        tracked_energy += p_tracked.value() * dt;
        ideal_energy += p_ideal.value() * dt;
        if (t as u64).is_multiple_of(250) {
            println!(
                "{:>8.0} {:>10.2} {:>12} {:>12} {:>9.1}%",
                t,
                dt_k,
                p_tracked,
                p_ideal,
                100.0 * p_tracked.value() / p_ideal.value().max(1e-12)
            );
        }
        t += dt;
    }
    println!(
        "\nenergy captured: {:.1}% of ideal over {} minutes — the 69 s hold",
        100.0 * tracked_energy / ideal_energy,
        (total / 60.0) as u64
    );
    println!("period loses almost nothing on thermal time scales, confirming the");
    println!("paper's claim that the technique generalises beyond photovoltaics.");
    Ok(())
}
