//! Calibrating your own PV cell model from bench measurements — the
//! exact procedure that produced this repository's AM-1815 preset,
//! applied to the paper's Table I data.
//!
//! Bring a light meter and a source-measure unit: log `Voc` at a handful
//! of intensities plus one MPP, feed them in, and get a simulation-ready
//! [`SingleDiodeModel`] back.
//!
//! Run with `cargo run --example calibrate_cell`.

use pv_mppt_repro::pv::fit::{fit_cell, FitOptions, MppPointMeasurement, VocPoint};
use pv_mppt_repro::pv::PvCell;
use pv_mppt_repro::units::{Lux, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bench data: Table I of the paper plus the AM-1815 datasheet MPP.
    let voc_points: Vec<VocPoint> = [
        (200.0, 4.978),
        (500.0, 5.242),
        (1000.0, 5.44),
        (2000.0, 5.64),
        (5000.0, 5.91),
    ]
    .iter()
    .map(|&(lux, v)| VocPoint {
        illuminance: Lux::new(lux),
        open_circuit_voltage: Volts::new(v),
    })
    .collect();
    let mpp = MppPointMeasurement {
        illuminance: Lux::new(200.0),
        voltage: Volts::new(3.0),
        current_amps: 42.1e-6,
    };

    println!("fitting a single-diode photo-shunt model to 5 Voc points + 1 MPP ...");
    let result = fit_cell(&voc_points, mpp, &FitOptions::default())?;
    println!(
        "done: cost = {:.3e}, worst Voc error = {:.2} %",
        result.cost,
        100.0 * result.worst_voc_error
    );

    let cell = PvCell::new(result.model);
    println!("\nfitted model vs bench data:");
    println!("{:>8} {:>12} {:>12}", "lux", "Voc bench", "Voc fitted");
    for p in &voc_points {
        let voc = cell.open_circuit_voltage(p.illuminance)?;
        println!(
            "{:>8.0} {:>12} {:>12}",
            p.illuminance.value(),
            p.open_circuit_voltage,
            voc
        );
    }
    let m = cell.mpp(Lux::new(200.0))?;
    println!(
        "\nMPP at 200 lux: {} at {} (bench: 42.1 µA at 3.0 V)",
        m.current, m.voltage
    );
    println!(
        "FOCV factor k at 1 klux: {}",
        cell.mpp(Lux::new(1000.0))?.focv_factor()
    );
    println!("\nDrop the printed parameters into SingleDiodeModel::builder() to make");
    println!("a preset for your own cell.");
    Ok(())
}
