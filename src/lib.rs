//! Facade crate for the DATE 2011 ultra low-power FOCV MPPT reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use pv_mppt_repro::...`. See the individual
//! crates for the substance:
//!
//! * [`units`] — typed physical quantities.
//! * [`pv`] — photovoltaic cell models and FOCV analysis.
//! * [`analog`] — behavioural analog circuit substrate (astable
//!   multivibrator, sample-and-hold, supply-current ledger).
//! * [`mod@env`] — indoor/outdoor illuminance environments and the Eq. (2)
//!   sampling-error analysis.
//! * [`converter`] — input-regulated buck-boost converter and cold-start.
//! * [`core`] — the paper's FOCV sample-and-hold MPPT system plus the
//!   baseline trackers it is compared against.
//! * [`sim`] — the shared simulation engine: [`sim::Stepper`] steppers,
//!   [`sim::drive`] time-stepping with adaptive dwell, and the
//!   deterministic [`sim::SweepRunner`] scenario fan-out.
//! * [`node`] — closed-loop wireless-sensor-node simulations.
//! * [`obs`] — opt-in deterministic observability: the
//!   [`obs::Recorder`] metric sink, simulated-time spans, and the
//!   four-bucket [`obs::EnergyLedger`] with its conservation
//!   invariant.
//! * [`fleet`] — deterministic fleet-scale simulation of heterogeneous
//!   node populations: seeded [`fleet::FleetSpec`] instantiation,
//!   sharded order-independent aggregation, tracker comparison over a
//!   whole population.
//! * [`campaign`] — multi-year endurance campaigns: seasonal skies and
//!   Markov weather over degradation epochs, per-node drift and fault
//!   schedules, survival percentiles in a bit-identical
//!   [`campaign::CampaignReport`].
//! * [`serve`] — the what-if service: dependency-free HTTP/1.1 over
//!   the fleet layer with canonical-JSON request identity, a
//!   byte-identical response cache, single-flight coalescing, chunked
//!   streaming with per-shard checkpoint/resume, live
//!   [`serve::ServiceMetrics`], and the `/campaign` endurance endpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eh_analog as analog;
pub use eh_campaign as campaign;
pub use eh_converter as converter;
pub use eh_core as core;
pub use eh_env as env;
pub use eh_fleet as fleet;
pub use eh_node as node;
pub use eh_obs as obs;
pub use eh_pv as pv;
pub use eh_serve as serve;
pub use eh_sim as sim;
pub use eh_units as units;
